//! L8 — staging id-range discipline over the daemon crate.
//!
//! The two-phase commit's whole correctness story rests on one numeric
//! contract: staging engines allocate ids at or above `LOCAL_ID_BASE`,
//! and the publish splice remaps every such id below the floor before it
//! touches the shared store. A staged id leaking through is silent store
//! corruption (it collides with nothing today and shadows a real object
//! tomorrow), which is why the discipline is linted rather than hoped:
//!
//! * **one floor** — exactly one `const LOCAL_ID_BASE` definition in
//!   `crates/daemon/src/`, and its value is the documented `1 << 48`;
//! * **no re-derivation** — the `1 << 48` literal appears nowhere else in
//!   the daemon (an ad-hoc copy can drift from the canonical floor);
//! * **floor is armed** — some code calls `ensure_id_floor(LOCAL_ID_BASE,
//!   …)`, i.e. staging engines actually allocate above the floor;
//! * **splice remaps** — the splice function (identified as the function
//!   calling `take_staged`) defines remap helpers (closures whose body
//!   references `LOCAL_ID_BASE`) and every `fresh_of`/`updated_of` loop
//!   over staged objects routes ids through one of them.
//!
//! The model-checker side of the same contract is `PublishModel`, whose
//! `no_remap`/`overlapping_reserve` mutants show what each rule prevents.

use crate::findings::Finding;
use crate::lexer::{TokKind, Token};
use crate::passes::Workspace;
use crate::source::{matching_close, SourceFile};

fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/daemon/src/")
}

/// True when `toks[i..]` starts the literal `1 << 48` (the lexer splits
/// `<<` into two `<` puncts).
fn is_floor_literal(toks: &[Token], i: usize) -> bool {
    toks[i].kind == TokKind::Num
        && toks[i].text == "1"
        && toks.get(i + 1).map(|t| t.is_punct('<')) == Some(true)
        && toks.get(i + 2).map(|t| t.is_punct('<')) == Some(true)
        && toks.get(i + 3).map(|t| t.kind == TokKind::Num && t.text == "48") == Some(true)
}

/// Token range of the function body containing `idx`, if any.
fn enclosing_fn_body(toks: &[Token], idx: usize) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].kind == TokKind::Ident {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                if let Some(close) = matching_close(toks, j, '{', '}') {
                    if j < idx && idx < close {
                        return Some((j, close));
                    }
                    if close < idx {
                        i = close + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    None
}

/// Names of let-bound closures in `toks[body]` whose body references
/// `LOCAL_ID_BASE` — the remap helpers.
fn remap_helpers(toks: &[Token], body: (usize, usize)) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = body.0;
    while i + 3 < body.1 {
        // `let NAME = [move] | … | { … }`
        if !(toks[i].is_ident("let") && toks[i + 1].kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i + 1].line;
        let mut j = i + 2;
        if !toks.get(j).map(|t| t.is_punct('=')).unwrap_or(false) {
            i += 1;
            continue;
        }
        j += 1;
        if toks.get(j).map(|t| t.is_ident("move")) == Some(true) {
            j += 1;
        }
        if !toks.get(j).map(|t| t.is_punct('|')).unwrap_or(false) {
            i += 1;
            continue;
        }
        // Skip the parameter list to the closing `|`.
        j += 1;
        while j < body.1 && !toks[j].is_punct('|') {
            j += 1;
        }
        j += 1;
        // Braced closure body, or a single expression up to `;`.
        let end = if toks.get(j).map(|t| t.is_punct('{')) == Some(true) {
            matching_close(toks, j, '{', '}').unwrap_or(body.1)
        } else {
            let mut k = j;
            while k < body.1 && !toks[k].is_punct(';') {
                k += 1;
            }
            k
        };
        if toks[j..=end.min(body.1)].iter().any(|t| t.is_ident("LOCAL_ID_BASE")) {
            out.push((name, line));
        }
        i = end + 1;
    }
    out
}

/// Runs the L8 pass.
pub fn pass_l8_id_range(ws: &Workspace, out: &mut Vec<Finding>) {
    let files: Vec<&SourceFile> = ws.files.iter().filter(|f| in_scope(&f.rel)).collect();
    if files.is_empty() {
        return; // nothing to police (e.g. fixture workspaces without a daemon)
    }

    // Rule 1+2: exactly one canonical floor definition, no stray literals.
    let mut defs: Vec<(&SourceFile, usize)> = Vec::new();
    for file in &files {
        for (i, t) in file.toks.iter().enumerate() {
            if !file.test_mask[i]
                && t.is_ident("const")
                && file.toks.get(i + 1).map(|t| t.is_ident("LOCAL_ID_BASE")) == Some(true)
            {
                defs.push((*file, i));
            }
        }
    }
    match defs.as_slice() {
        [] => out.push(Finding {
            pass: "L8-id-range",
            file: "crates/daemon/src".into(),
            line: 0,
            message: "no `const LOCAL_ID_BASE` found in the daemon: the staging id floor \
                      has no canonical definition"
                .into(),
        }),
        [(file, i)] => {
            // The definition's value must be the documented `1 << 48`.
            let toks = &file.toks;
            let mut j = *i + 2;
            while j < toks.len() && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
                j += 1;
            }
            let ok = j + 1 < toks.len() && toks[j].is_punct('=') && is_floor_literal(toks, j + 1);
            if !ok {
                out.push(Finding {
                    pass: "L8-id-range",
                    file: file.rel.clone(),
                    line: toks[*i].line,
                    message: "LOCAL_ID_BASE is not the documented `1 << 48`".into(),
                });
            }
        }
        many => {
            for (file, i) in &many[1..] {
                out.push(Finding {
                    pass: "L8-id-range",
                    file: file.rel.clone(),
                    line: file.toks[*i].line,
                    message: format!(
                        "duplicate `const LOCAL_ID_BASE` (canonical definition is in {}): \
                         two floors can drift apart",
                        many[0].0.rel
                    ),
                });
            }
        }
    }
    for file in &files {
        let toks = &file.toks;
        for i in 0..toks.len() {
            if file.test_mask[i] || !is_floor_literal(toks, i) {
                continue;
            }
            // The canonical const's own value is the one allowed site.
            let is_def_value = defs.iter().any(|(f, d)| {
                f.rel == file.rel && *d < i && i < *d + 12 // within the const item
            });
            if !is_def_value {
                out.push(Finding {
                    pass: "L8-id-range",
                    file: file.rel.clone(),
                    line: toks[i].line,
                    message: "re-derives the staging id floor as a raw `1 << 48`; \
                              use LOCAL_ID_BASE"
                        .into(),
                });
            }
        }
    }

    // Rule 3: the floor is actually installed on the shared allocator.
    let floor_armed = files.iter().any(|f| {
        f.toks.windows(3).any(|w| {
            w[0].is_ident("ensure_id_floor") && w[1].is_punct('(') && w[2].is_ident("LOCAL_ID_BASE")
        })
    });
    if !floor_armed && !defs.is_empty() {
        out.push(Finding {
            pass: "L8-id-range",
            file: defs[0].0.rel.clone(),
            line: defs[0].0.toks[defs[0].1].line,
            message: "no `ensure_id_floor(LOCAL_ID_BASE, …)` call: staging engines are \
                      never lifted above the id floor, so staged ids can collide with \
                      real ones"
                .into(),
        });
    }

    // Rule 4: the splice (the function calling `take_staged`) remaps.
    for file in &files {
        let toks = &file.toks;
        let Some(call) = toks.iter().position(|t| t.is_ident("take_staged")) else {
            continue;
        };
        let Some(body) = enclosing_fn_body(toks, call) else { continue };
        let helpers = remap_helpers(toks, body);
        if helpers.is_empty() {
            out.push(Finding {
                pass: "L8-id-range",
                file: file.rel.clone(),
                line: toks[call].line,
                message: "the splice takes staged objects but defines no remap helper \
                          (a closure referencing LOCAL_ID_BASE): staged ids reach the \
                          store unmapped"
                    .into(),
            });
            continue;
        }
        // Every loop over staged objects must route through a helper.
        let mut i = body.0;
        while i < body.1 {
            let t = &toks[i];
            let is_staged_iter = (t.is_ident("fresh_of") || t.is_ident("updated_of"))
                && toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true);
            if !is_staged_iter {
                i += 1;
                continue;
            }
            // The staged kind, for the message (`FileKind::K`).
            let kind = toks[i + 2..]
                .iter()
                .take(4)
                .rev()
                .find(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_else(|| "?".into());
            // Loop body: the next `{` after the iterator call.
            let mut j = matching_close(toks, i + 1, '(', ')').map(|e| e + 1).unwrap_or(i + 2);
            while j < body.1 && !toks[j].is_punct('{') {
                j += 1;
            }
            let Some(close) = matching_close(toks, j, '{', '}') else { break };
            let routed = toks[j..close].iter().any(|t| helpers.iter().any(|(h, _)| t.is_ident(h)));
            if !routed {
                out.push(Finding {
                    pass: "L8-id-range",
                    file: file.rel.clone(),
                    line: t.line,
                    message: format!(
                        "splice loop over staged FileKind::{kind} objects never routes \
                         ids through a remap helper ({}): a staged id ≥ LOCAL_ID_BASE \
                         can reach the published store",
                        helpers.iter().map(|(h, _)| h.as_str()).collect::<Vec<_>>().join(", ")
                    ),
                });
            }
            i = close + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::from("/nonexistent"),
            files: files.iter().map(|(rel, text)| SourceFile::parse(rel, text)).collect(),
            manifests: Vec::new(),
        }
    }

    fn findings(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = ws_of(files);
        let mut out = Vec::new();
        pass_l8_id_range(&ws, &mut out);
        out
    }

    const GOOD_SPLICE: &str = "
        pub const LOCAL_ID_BASE: u64 = 1 << 48;
        fn open(sub: &mut Substrate) { sub.ensure_id_floor(LOCAL_ID_BASE, LOCAL_ID_BASE); }
        fn splice(overlay: Overlay, base: u64) {
            let staged = overlay.take_staged();
            let map_chunk = move |id: u64| if id >= LOCAL_ID_BASE { id - LOCAL_ID_BASE + base } else { id };
            for (name, data) in staged.fresh_of(FileKind::DiskChunk) {
                write(map_chunk(parse(name)), data);
            }
            for (name, data) in staged.fresh_of(FileKind::Hook) {
                write_hook(name, map_chunk(parse(name)));
            }
        }";

    #[test]
    fn disciplined_daemon_is_clean() {
        let out = findings(&[("crates/daemon/src/shared.rs", GOOD_SPLICE)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_floor_definition_is_flagged() {
        let out = findings(&[("crates/daemon/src/shared.rs", "fn f() {}")]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("no `const LOCAL_ID_BASE`"), "{}", out[0].message);
    }

    #[test]
    fn duplicate_floor_and_stray_literal_are_flagged() {
        let src = "
            pub const LOCAL_ID_BASE: u64 = 1 << 48;
            fn open(sub: &mut Substrate) { sub.ensure_id_floor(LOCAL_ID_BASE, LOCAL_ID_BASE); }";
        let dup = "const LOCAL_ID_BASE: u64 = 1 << 48;";
        let stray = "fn floor() -> u64 { 1 << 48 }";
        let out = findings(&[
            ("crates/daemon/src/shared.rs", src),
            ("crates/daemon/src/staging.rs", dup),
            ("crates/daemon/src/server.rs", stray),
        ]);
        assert!(
            out.iter().any(|f| f.message.contains("duplicate `const LOCAL_ID_BASE`")),
            "{out:?}"
        );
        assert!(out.iter().any(|f| f.message.contains("re-derives")), "{out:?}");
    }

    #[test]
    fn wrong_floor_value_is_flagged() {
        let src = "
            pub const LOCAL_ID_BASE: u64 = 1 << 40;
            fn open(sub: &mut Substrate) { sub.ensure_id_floor(LOCAL_ID_BASE, LOCAL_ID_BASE); }";
        let out = findings(&[("crates/daemon/src/shared.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("not the documented"), "{}", out[0].message);
    }

    #[test]
    fn unarmed_floor_is_flagged() {
        let src = "pub const LOCAL_ID_BASE: u64 = 1 << 48;";
        let out = findings(&[("crates/daemon/src/shared.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("ensure_id_floor"), "{}", out[0].message);
    }

    #[test]
    fn splice_loop_without_remap_is_flagged() {
        let src = "
            pub const LOCAL_ID_BASE: u64 = 1 << 48;
            fn open(sub: &mut Substrate) { sub.ensure_id_floor(LOCAL_ID_BASE, LOCAL_ID_BASE); }
            fn splice(overlay: Overlay, base: u64) {
                let staged = overlay.take_staged();
                let map_chunk = move |id: u64| if id >= LOCAL_ID_BASE { id - LOCAL_ID_BASE + base } else { id };
                for (name, data) in staged.fresh_of(FileKind::DiskChunk) {
                    write(map_chunk(parse(name)), data);
                }
                for (name, data) in staged.fresh_of(FileKind::Hook) {
                    write_hook(name, parse(name));
                }
            }";
        let out = findings(&[("crates/daemon/src/shared.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("FileKind::Hook"), "{}", out[0].message);
        assert!(out[0].message.contains("map_chunk"), "{}", out[0].message);
    }

    #[test]
    fn splice_without_any_helper_is_flagged() {
        let src = "
            pub const LOCAL_ID_BASE: u64 = 1 << 48;
            fn open(sub: &mut Substrate) { sub.ensure_id_floor(LOCAL_ID_BASE, LOCAL_ID_BASE); }
            fn splice(overlay: Overlay) {
                let staged = overlay.take_staged();
                for (name, data) in staged.fresh_of(FileKind::DiskChunk) { write(name, data); }
            }";
        let out = findings(&[("crates/daemon/src/shared.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("no remap helper"), "{}", out[0].message);
    }

    #[test]
    fn non_daemon_workspaces_are_out_of_scope() {
        assert!(findings(&[("crates/core/src/gc.rs", "fn f() -> u64 { 1 << 48 }")]).is_empty());
    }
}
