//! SARIF 2.1.0 export of lint findings.
//!
//! SARIF (Static Analysis Results Interchange Format) is the lingua
//! franca code-scanning UIs ingest — emitting it lets `mhd-lint` findings
//! annotate pull requests without any bespoke glue. The subset produced
//! here is deliberately small: one `run`, one `rule` per pass, one
//! `result` per finding with a physical location. Validated shape-wise by
//! the round-trip test below against our own JSON parser.

use std::collections::BTreeSet;

use serde_json::{Number, Value};

use crate::findings::Finding;

fn obj(fields: Vec<(String, Value)>) -> Value {
    Value::Object(fields)
}

fn s(text: &str) -> Value {
    Value::String(text.to_string())
}

/// Renders `findings` as a SARIF 2.1.0 document. `new` findings get
/// `error` level; `baselined` ones are included at `note` level so the
/// debt stays visible in scanning UIs without failing the check.
pub fn to_sarif(new: &[Finding], baselined: &[Finding]) -> String {
    let passes: BTreeSet<&'static str> = new.iter().chain(baselined).map(|f| f.pass).collect();
    let rules: Vec<Value> = passes
        .iter()
        .map(|p| obj(vec![("id".into(), s(p)), ("name".into(), s(&p.replace('-', " ")))]))
        .collect();
    let rule_index = |pass: &str| passes.iter().position(|p| *p == pass).unwrap_or(0) as u64;

    let result_of = |f: &Finding, level: &str| {
        let mut location = vec![(
            "artifactLocation".into(),
            obj(vec![("uri".into(), s(&f.file)), ("uriBaseId".into(), s("SRCROOT"))]),
        )];
        if f.line > 0 {
            location.push((
                "region".into(),
                obj(vec![("startLine".into(), Value::Number(Number::U64(f.line as u64)))]),
            ));
        }
        obj(vec![
            ("ruleId".into(), s(f.pass)),
            ("ruleIndex".into(), Value::Number(Number::U64(rule_index(f.pass)))),
            ("level".into(), s(level)),
            ("message".into(), obj(vec![("text".into(), s(&f.message))])),
            (
                "locations".into(),
                Value::Array(vec![obj(vec![("physicalLocation".into(), obj(location))])]),
            ),
        ])
    };

    let mut results: Vec<Value> = Vec::new();
    for f in new {
        results.push(result_of(f, "error"));
    }
    for f in baselined {
        results.push(result_of(f, "note"));
    }

    let run = obj(vec![
        (
            "tool".into(),
            obj(vec![(
                "driver".into(),
                obj(vec![
                    ("name".into(), s("mhd-lint")),
                    ("informationUri".into(), s("https://example.invalid/mhd-lint")),
                    ("rules".into(), Value::Array(rules)),
                ]),
            )]),
        ),
        ("columnKind".into(), s("utf16CodeUnits")),
        ("results".into(), Value::Array(results)),
    ]);
    let top = obj(vec![
        ("$schema".into(), s("https://json.schemastore.org/sarif-2.1.0.json")),
        ("version".into(), s("2.1.0")),
        ("runs".into(), Value::Array(vec![run])),
    ]);
    let mut text = serde_json::to_string_pretty(&top).expect("sarif Value serializes");
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: &'static str, file: &str, line: u32, msg: &str) -> Finding {
        Finding { pass, file: file.into(), line, message: msg.into() }
    }

    fn lookup<'a>(v: &'a Value, key: &str) -> &'a Value {
        let Value::Object(fields) = v else { panic!("not an object: {v:?}") };
        &fields.iter().find(|(k, _)| k == key).unwrap_or_else(|| panic!("no {key}")).1
    }

    #[test]
    fn emits_a_valid_shaped_sarif_log() {
        let new = [finding("L7-lock-order", "crates/daemon/src/shared.rs", 42, "cycle")];
        let old = [finding("L1-no-panic", "crates/core/src/mhd.rs", 7, "unwrap")];
        let text = to_sarif(&new, &old);
        let doc: Value = serde_json::from_str(&text).expect("self-parses");
        assert_eq!(lookup(&doc, "version"), &Value::String("2.1.0".into()));
        let Value::Array(runs) = lookup(&doc, "runs") else { panic!() };
        let Value::Array(results) = lookup(&runs[0], "results") else { panic!() };
        assert_eq!(results.len(), 2);
        assert_eq!(lookup(&results[0], "level"), &Value::String("error".into()));
        assert_eq!(lookup(&results[1], "level"), &Value::String("note".into()));
        assert_eq!(lookup(&results[0], "ruleId"), &Value::String("L7-lock-order".into()));
        let rules = lookup(lookup(lookup(&runs[0], "tool"), "driver"), "rules");
        let Value::Array(rules) = rules else { panic!() };
        assert_eq!(rules.len(), 2, "one rule per distinct pass");
    }

    #[test]
    fn zero_line_findings_omit_the_region() {
        let new = [finding("L8-id-range", "crates/daemon/src", 0, "no floor")];
        let text = to_sarif(&new, &[]);
        assert!(!text.contains("startLine"), "{text}");
        assert!(text.contains("\"uri\""), "{text}");
    }
}
