//! A minimal Rust lexer: just enough token structure for pattern-matching
//! lint passes, with line numbers for findings.
//!
//! The goal is *not* a faithful Rust grammar — it is to never confuse the
//! constructs that would make a text-level `grep` lie:
//!
//! * comments (line, doc, and **nested** block comments) produce no tokens;
//! * string/char literals produce single tokens, so `"panic!("` inside a
//!   string never looks like a macro call — including raw strings
//!   (`r#"…"#`), byte strings, and escapes;
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`), so an
//!   apostrophe never swallows the rest of the file.
//!
//! Everything else (numbers, multi-char operators) is kept deliberately
//! dumb: operators come out as single-character [`TokKind::Punct`] tokens
//! and passes match e.g. `::` as two consecutive `:` tokens.

/// Coarse token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `FileKind`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — kept distinct so it never parses as an
    /// unterminated char literal.
    Lifetime,
    /// String literal (normal, raw, or byte). `text` holds the contents
    /// between the delimiters, escapes unprocessed.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Any other single character (`.`, `(`, `::` as two tokens, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's text (for [`TokKind::Str`], the unquoted contents).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// True when this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True when this token is the single punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Never fails: malformed input (e.g. an
/// unterminated string) simply ends the current token at end-of-file,
/// which is good enough for linting — the compiler rejects such files
/// before the linter ever matters.
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments (incl. /// and //!): skip to end of line.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comments, which nest in Rust.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings and byte strings: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            let mut raw = c == 'r';
            if c == 'b' && chars.get(j) == Some(&'r') {
                raw = true;
                j += 1;
            }
            if raw && matches!(chars.get(j), Some(&'"') | Some(&'#')) {
                // Raw (byte) string: count hashes, then scan for the
                // closing quote followed by the same number of hashes.
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    j += 1;
                    let start = j;
                    'scan: while j < chars.len() {
                        if chars[j] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    let text: String = chars[start..j.min(chars.len())].iter().collect();
                    toks.push(Token { kind: TokKind::Str, text, line });
                    line += count_lines(&chars[start..j.min(chars.len())]);
                    i = (j + 1 + hashes).min(chars.len());
                    continue;
                }
            } else if c == 'b' && chars.get(j) == Some(&'"') {
                // Byte string: same as a normal string, shifted by one.
                i += 1;
                // Fall through to the normal-string arm below via goto-less
                // duplication: handled by not continuing here.
            } else if c == 'b' && chars.get(j) == Some(&'\'') {
                // Byte char literal.
                i += 1;
                // Falls through to the char-literal arm below.
            }
        }
        let c = chars[i];
        if c == '"' {
            let mut j = i + 1;
            let start = j;
            while j < chars.len() && chars[j] != '"' {
                if chars[j] == '\\' {
                    j += 1; // skip the escaped character
                }
                j += 1;
            }
            let text: String = chars[start..j.min(chars.len())].iter().collect();
            toks.push(Token { kind: TokKind::Str, text, line });
            line += count_lines(&chars[start..j.min(chars.len())]);
            i = (j + 1).min(chars.len());
            continue;
        }
        if c == '\'' {
            // Lifetime iff a label-like ident follows without a closing
            // quote right after one character ('a' is a char, 'a is a
            // lifetime, '\n' is a char).
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            if next.map(is_ident_start).unwrap_or(false) && after != Some('\'') {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                toks.push(Token { kind: TokKind::Lifetime, text, line });
                i = j;
                continue;
            }
            let mut j = i + 1;
            if chars.get(j) == Some(&'\\') {
                j += 1;
                if chars.get(j) == Some(&'u') {
                    while j < chars.len() && chars[j] != '}' {
                        j += 1;
                    }
                }
                j += 1;
            } else {
                j += 1;
            }
            // Now expect the closing quote.
            if chars.get(j) == Some(&'\'') {
                j += 1;
            }
            let text: String = chars[i..j.min(chars.len())].iter().collect();
            toks.push(Token { kind: TokKind::Char, text, line });
            i = j.min(chars.len());
            continue;
        }
        if is_ident_start(c) {
            let mut j = i;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            toks.push(Token { kind: TokKind::Ident, text, line });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            // Dumb numeric scan: suffixes and hex digits fold in; `1.5`
            // lexes as Num(1) Punct(.) Num(5), which no pass cares about.
            let mut j = i;
            while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            toks.push(Token { kind: TokKind::Num, text, line });
            i = j;
            continue;
        }
        toks.push(Token { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_produce_no_tokens() {
        assert!(kinds("// panic!(\"x\")\n/* unwrap /* nested */ still */").is_empty());
        let toks = kinds("a /* c */ b");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn strings_are_single_tokens() {
        let toks = kinds(r#"f("panic!(", r"unwrap()", b"x\"y")"#);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Str).map(|(_, t)| t.clone()).collect();
        assert_eq!(strs, vec!["panic!(", "unwrap()", "x\\\"y"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds("r#\"has \"quotes\" inside\"# after");
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[0].1, "has \"quotes\" inside");
        assert!(toks[1].1 == "after");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str; 'x'; '\\n'; 'static");
        assert_eq!(toks[1].0, TokKind::Lifetime);
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(chars, 2);
        assert_eq!(toks.last().map(|t| t.0), Some(TokKind::Lifetime));
    }

    #[test]
    fn lines_are_tracked_across_multiline_constructs() {
        let toks = lex("a\n/* x\ny */\nb\n\"s1\ns2\"\nc");
        let find = |name: &str| toks.iter().find(|t| t.text == name).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("c"), Some(7));
    }
}
