//! Findings and the baseline ratchet.
//!
//! The baseline (`lint-baseline.json`) records, per `(pass, file)` pair,
//! how many findings were known when the baseline was last written. A run
//! fails only on findings *beyond* those counts — so pre-existing debt is
//! tracked without blocking CI, new debt is rejected, and burning debt
//! down never requires touching the baseline (counts may only shrink; use
//! `--write-baseline` to record the progress).

use std::collections::BTreeMap;

use serde_json::{Number, Value};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Pass identifier (e.g. `L1-no-panic`).
    pub pass: &'static str,
    /// Workspace-relative file (or model name for checker findings).
    pub file: String,
    /// 1-based line, 0 when the finding is not line-anchored.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Baseline counts keyed by `(pass, file)`.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    counts: BTreeMap<(String, String), usize>,
}

/// Outcome of ratcheting findings against a baseline: `new` must be empty
/// for the run to pass; `baselined` are reported but tolerated.
#[derive(Debug)]
pub struct Ratchet {
    /// Findings beyond the baselined count for their `(pass, file)` group.
    pub new: Vec<Finding>,
    /// Findings absorbed by the baseline.
    pub baselined: Vec<Finding>,
}

impl Baseline {
    /// Parses the JSON baseline format produced by [`Baseline::to_json`].
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("baseline is not JSON: {e}"))?;
        let Value::Object(top) = value else {
            return Err("baseline root must be an object".into());
        };
        let entries = top
            .iter()
            .find(|(k, _)| k == "entries")
            .map(|(_, v)| v)
            .ok_or("baseline has no \"entries\" array")?;
        let Value::Array(items) = entries else {
            return Err("baseline \"entries\" must be an array".into());
        };
        let mut counts = BTreeMap::new();
        for item in items {
            let Value::Object(fields) = item else {
                return Err("baseline entry must be an object".into());
            };
            let get_str = |name: &str| {
                fields.iter().find(|(k, _)| k == name).and_then(|(_, v)| match v {
                    Value::String(s) => Some(s.clone()),
                    _ => None,
                })
            };
            let count = fields.iter().find(|(k, _)| k == "count").and_then(|(_, v)| match v {
                Value::Number(Number::U64(n)) => Some(*n as usize),
                _ => None,
            });
            match (get_str("pass"), get_str("file"), count) {
                (Some(p), Some(f), Some(c)) => {
                    counts.insert((p, f), c);
                }
                _ => return Err("baseline entry needs pass/file/count".into()),
            }
        }
        Ok(Baseline { counts })
    }

    /// Builds a baseline that exactly absorbs `findings`.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.pass.to_string(), f.file.clone())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Serializes to the on-disk JSON format (sorted, diff-friendly).
    pub fn to_json(&self) -> String {
        let entries: Vec<Value> = self
            .counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|((pass, file), &count)| {
                Value::Object(vec![
                    ("pass".into(), Value::String(pass.clone())),
                    ("file".into(), Value::String(file.clone())),
                    ("count".into(), Value::Number(Number::U64(count as u64))),
                ])
            })
            .collect();
        let top = Value::Object(vec![
            ("version".into(), Value::Number(Number::U64(1))),
            ("entries".into(), Value::Array(entries)),
        ]);
        let mut text = serde_json::to_string_pretty(&top).expect("baseline Value serializes");
        text.push('\n');
        text
    }

    /// Splits `findings` into new vs. baselined. Within one `(pass, file)`
    /// group the *first* `count` findings (file order) are absorbed; the
    /// linter is deterministic, so this keeps attribution stable.
    pub fn ratchet(&self, findings: Vec<Finding>) -> Ratchet {
        let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut result = Ratchet { new: Vec::new(), baselined: Vec::new() };
        for f in findings {
            let key = (f.pass.to_string(), f.file.clone());
            let budget = self.counts.get(&key).copied().unwrap_or(0);
            let used_so_far = used.entry(key).or_insert(0);
            if *used_so_far < budget {
                *used_so_far += 1;
                result.baselined.push(f);
            } else {
                result.new.push(f);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(pass: &'static str, file: &str, line: u32) -> Finding {
        Finding { pass, file: file.into(), line, message: format!("at {line}") }
    }

    #[test]
    fn baseline_round_trips() {
        let b = Baseline::from_findings(&[
            finding("L1-no-panic", "a.rs", 1),
            finding("L1-no-panic", "a.rs", 9),
            finding("L4-obs-labels", "b.rs", 3),
        ]);
        let json = b.to_json();
        let back = Baseline::from_json(&json).unwrap();
        assert_eq!(back.counts, b.counts);
    }

    #[test]
    fn ratchet_absorbs_up_to_count_and_flags_the_rest() {
        let b = Baseline::from_findings(&[finding("L1-no-panic", "a.rs", 1)]);
        let r = b.ratchet(vec![
            finding("L1-no-panic", "a.rs", 1),
            finding("L1-no-panic", "a.rs", 2),
            finding("L1-no-panic", "c.rs", 3),
        ]);
        assert_eq!(r.baselined.len(), 1);
        assert_eq!(r.new.len(), 2);
    }

    #[test]
    fn burn_down_needs_no_baseline_edit() {
        let b = Baseline::from_findings(&[
            finding("L1-no-panic", "a.rs", 1),
            finding("L1-no-panic", "a.rs", 2),
        ]);
        let r = b.ratchet(vec![finding("L1-no-panic", "a.rs", 1)]);
        assert!(r.new.is_empty());
    }

    #[test]
    fn rejects_malformed_baselines() {
        assert!(Baseline::from_json("[]").is_err());
        assert!(Baseline::from_json("{\"entries\": 3}").is_err());
        assert!(Baseline::from_json("{\"entries\": [{\"pass\": \"x\"}]}").is_err());
    }
}
