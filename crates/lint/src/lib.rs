//! `mhd-lint`: workspace invariant linter + deterministic concurrency
//! model checker.
//!
//! The workspace maintains invariants the Rust compiler cannot check:
//!
//! * **L1** — no `unwrap`/`expect`/`panic!` on durability paths (the
//!   store, the CLI, and the core I/O modules): a panic mid-commit
//!   strands a half-written store;
//! * **L2** — backend mutations go through the tmp+rename commit helpers,
//!   and `FileKind::FLUSH_ORDER` stays a reference-respecting
//!   topological order that the batched backend actually uses;
//! * **L3** — DiskChunks and Hooks are immutable outside GC/compaction
//!   (the paper's core invariant: HHR rewrites only Manifests);
//! * **L4** — observability labels come from the registered vocabularies
//!   (`SCOPE_LABEL_KEYS`, `STAGE_NAME_PREFIXES`), so traces aggregate;
//! * **L5** — crate roots warn on missing docs, and only binary crates
//!   may force the `obs` cargo feature;
//! * **L6** — crates without `unsafe` forbid it at the root.
//!
//! The passes run over a dependency-free in-tree lexer ([`lexer`]); the
//! concurrency side ([`mck`], [`models`]) exhaustively explores the
//! batched flush-barrier protocol and the trace-ring prune protocol over
//! every interleaving, treating every reachable state as a crash point.
//! Findings ratchet against `lint-baseline.json` ([`findings`]): known
//! debt is tolerated, new debt fails CI, burn-down is free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod findings;
pub mod lexer;
pub mod mck;
pub mod models;
pub mod passes;
pub mod source;

pub use findings::{Baseline, Finding, Ratchet};
pub use mck::{check, CheckResult, Model, Violation};
pub use models::{FlushModel, RingModel};
pub use passes::{run_passes, Workspace};
pub use source::SourceFile;
