//! `mhd-lint`: workspace invariant linter + deterministic concurrency
//! model checker.
//!
//! The workspace maintains invariants the Rust compiler cannot check:
//!
//! * **L1** — no `unwrap`/`expect`/`panic!` on durability paths (the
//!   store, the CLI, and the core I/O modules): a panic mid-commit
//!   strands a half-written store;
//! * **L2** — backend mutations go through the tmp+rename commit helpers,
//!   and `FileKind::FLUSH_ORDER` stays a reference-respecting
//!   topological order that the batched backend actually uses;
//! * **L3** — DiskChunks and Hooks are immutable outside GC/compaction
//!   (the paper's core invariant: HHR rewrites only Manifests);
//! * **L4** — observability labels come from the registered vocabularies
//!   (`SCOPE_LABEL_KEYS`, `STAGE_NAME_PREFIXES`), so traces aggregate;
//! * **L5** — crate roots warn on missing docs, and only binary crates
//!   may force the `obs` cargo feature;
//! * **L6** — crates without `unsafe` forbid it at the root;
//! * **L7** — the daemon's lock acquisition graph stays acyclic and the
//!   engine lock is never acquired while another lock is held ([`locks`]);
//! * **L8** — staging ids live above one canonical `LOCAL_ID_BASE` floor
//!   and the publish splice remaps every one of them ([`idrange`]).
//!
//! The passes run over a dependency-free in-tree lexer ([`lexer`]); the
//! concurrency side ([`mck`], [`models`]) exhaustively explores the
//! batched flush-barrier, trace-ring prune, GC-watermark, two-phase
//! publish, intent-record crash-recovery, and compaction-vs-GC protocols
//! over every interleaving, treating every reachable state as a crash
//! point. Findings ratchet against `lint-baseline.json` ([`findings`]):
//! known debt is tolerated, new debt fails CI, burn-down is free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod findings;
pub mod idrange;
pub mod lexer;
pub mod locks;
pub mod mck;
pub mod models;
pub mod passes;
pub mod sarif;
pub mod source;

pub use findings::{Baseline, Finding, Ratchet};
pub use idrange::pass_l8_id_range;
pub use locks::{lock_graph, pass_l7_lock_order, LockGraph};
pub use mck::{check, CheckResult, Model, Violation};
pub use models::{CompactGcModel, FlushModel, IntentModel, PublishModel, RingModel};
pub use passes::{run_passes, Workspace};
pub use sarif::to_sarif;
pub use source::SourceFile;
