//! A deterministic-schedule concurrency model checker.
//!
//! Loom-style explicit-state exploration, in-tree and dependency-free: a
//! [`Model`] describes a small concurrent protocol as a state machine with
//! one enabled-step relation per thread, and [`check`] enumerates *every*
//! interleaving of those steps by depth-first search with state dedup.
//!
//! Two properties are verified:
//!
//! * the **invariant** holds in every reachable state — because the
//!   protocols modelled here are crash-consistency protocols, "every
//!   reachable state" doubles as "every crash point": a state where the
//!   invariant holds is a state from which recovery works;
//! * the **quiescent** condition holds in every state where no thread has
//!   an enabled step (normal termination and deadlocks both land here).
//!
//! Exploration is bounded by a state budget; hitting the budget reports
//! `truncated` so CI can fail on incomplete exploration rather than
//! silently passing a half-checked model.

use std::collections::BTreeSet;
use std::fmt::Debug;

/// A concurrent protocol small enough to enumerate exhaustively.
pub trait Model {
    /// Global state, cloned at every branch point. Its `Debug` rendering
    /// is used as the dedup key, so it must be a faithful (injective)
    /// description of the state.
    type State: Clone + Debug;

    /// Initial state.
    fn init(&self) -> Self::State;

    /// Number of threads; thread ids are `0..threads()`.
    fn threads(&self) -> usize;

    /// Whether thread `tid` has a step it could take from `s`.
    fn enabled(&self, s: &Self::State, tid: usize) -> bool;

    /// Performs thread `tid`'s next step. Only called when enabled.
    fn step(&self, s: &mut Self::State, tid: usize);

    /// Safety property checked in every reachable state (every crash
    /// point). Return a description of the violation, if any.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// Property of terminal states (no thread enabled).
    fn quiescent(&self, s: &Self::State) -> Result<(), String>;
}

/// A property violation with the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub message: String,
    /// Thread ids, in order, replaying the path from `init` to the bad
    /// state — a deterministic repro of the interleaving.
    pub schedule: Vec<usize>,
    /// Debug rendering of the violating state.
    pub state: String,
}

/// Result of exploring a model.
#[derive(Debug)]
pub struct CheckResult {
    /// Distinct states visited.
    pub states: usize,
    /// True when the state budget stopped exploration early; treat as a
    /// failure in CI — an unexplored model proves nothing.
    pub truncated: bool,
    /// States still awaiting expansion when exploration stopped: `0` on a
    /// complete run, the abandoned-frontier size on a truncated one — a
    /// measure of how much work the budget cut off.
    pub frontier: usize,
    /// The longest schedule explored, as thread ids from `init`. On a
    /// truncated run this is the deepest path the search got to before
    /// the budget hit; replaying it shows *where* the state space blew up.
    pub deepest_path: Vec<usize>,
    /// First violation found, if any.
    pub violation: Option<Violation>,
}

impl CheckResult {
    /// True when the model was fully explored and no violation was found.
    pub fn passed(&self) -> bool {
        self.complete() && self.violation.is_none()
    }

    /// True when the whole state space was explored (no truncation). A
    /// model that is not `complete` proves nothing, violation or not —
    /// CI must treat `complete == false` as a failure in its own right.
    pub fn complete(&self) -> bool {
        !self.truncated
    }
}

/// Exhaustively explores `model` up to `max_states` distinct states.
pub fn check<M: Model>(model: &M, max_states: usize) -> CheckResult {
    let mut visited: BTreeSet<String> = BTreeSet::new();
    let mut stack: Vec<(M::State, Vec<usize>)> = Vec::new();
    let mut deepest_path: Vec<usize> = Vec::new();

    let init = model.init();
    visited.insert(format!("{init:?}"));
    stack.push((init, Vec::new()));

    while let Some((state, schedule)) = stack.pop() {
        if schedule.len() > deepest_path.len() {
            deepest_path = schedule.clone();
        }
        if let Err(message) = model.invariant(&state) {
            return CheckResult {
                states: visited.len(),
                truncated: false,
                frontier: stack.len(),
                deepest_path,
                violation: Some(Violation { message, schedule, state: format!("{state:?}") }),
            };
        }
        let enabled: Vec<usize> =
            (0..model.threads()).filter(|&t| model.enabled(&state, t)).collect();
        if enabled.is_empty() {
            if let Err(message) = model.quiescent(&state) {
                return CheckResult {
                    states: visited.len(),
                    truncated: false,
                    frontier: stack.len(),
                    deepest_path,
                    violation: Some(Violation {
                        message: format!("at quiescence: {message}"),
                        schedule,
                        state: format!("{state:?}"),
                    }),
                };
            }
            continue;
        }
        for tid in enabled {
            let mut next = state.clone();
            model.step(&mut next, tid);
            let key = format!("{next:?}");
            if visited.contains(&key) {
                continue;
            }
            if visited.len() >= max_states {
                return CheckResult {
                    states: visited.len(),
                    truncated: true,
                    // +1: the state whose successors we were expanding is
                    // itself unfinished work.
                    frontier: stack.len() + 1,
                    deepest_path,
                    violation: None,
                };
            }
            visited.insert(key);
            let mut sched = schedule.clone();
            sched.push(tid);
            stack.push((next, sched));
        }
    }
    CheckResult {
        states: visited.len(),
        truncated: false,
        frontier: 0,
        deepest_path,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter twice each; invariant says
    /// the counter never exceeds 4, quiescence says it reaches exactly 4.
    struct Counter {
        broken: bool,
    }

    #[derive(Clone, Debug)]
    struct CounterState {
        value: u32,
        remaining: [u32; 2],
    }

    impl Model for Counter {
        type State = CounterState;
        fn init(&self) -> CounterState {
            CounterState { value: 0, remaining: [2, 2] }
        }
        fn threads(&self) -> usize {
            2
        }
        fn enabled(&self, s: &CounterState, tid: usize) -> bool {
            s.remaining[tid] > 0
        }
        fn step(&self, s: &mut CounterState, tid: usize) {
            s.remaining[tid] -= 1;
            // The broken variant loses one thread's final increment —
            // a "lost update" the quiescent check must catch.
            if !(self.broken && tid == 1 && s.remaining[1] == 0) {
                s.value += 1;
            }
        }
        fn invariant(&self, s: &CounterState) -> Result<(), String> {
            if s.value > 4 {
                return Err(format!("counter overshot: {}", s.value));
            }
            Ok(())
        }
        fn quiescent(&self, s: &CounterState) -> Result<(), String> {
            if s.value != 4 {
                return Err(format!("lost update: counter is {} not 4", s.value));
            }
            Ok(())
        }
    }

    #[test]
    fn correct_counter_passes_exhaustively() {
        let result = check(&Counter { broken: false }, 10_000);
        assert!(result.passed(), "{:?}", result.violation);
        assert!(result.states > 4, "should explore interleavings, saw {}", result.states);
    }

    #[test]
    fn lost_update_is_caught_with_a_schedule() {
        let result = check(&Counter { broken: true }, 10_000);
        let v = result.violation.expect("must catch the lost update");
        assert!(v.message.contains("lost update"), "{}", v.message);
        assert!(!v.schedule.is_empty());
        // The schedule must replay to the violating state.
        let model = Counter { broken: true };
        let mut s = model.init();
        for &tid in &v.schedule {
            model.step(&mut s, tid);
        }
        assert_eq!(format!("{s:?}"), v.state);
    }

    #[test]
    fn budget_truncation_is_reported() {
        let result = check(&Counter { broken: false }, 3);
        assert!(result.truncated);
        assert!(!result.passed());
    }

    #[test]
    fn truncation_reports_frontier_and_deepest_path_and_fails() {
        // A truncated exploration must fail (`!passed`, `!complete`) even
        // with no violation found — an unexplored model proves nothing —
        // and must say how much work was abandoned: a nonzero frontier
        // and a replayable deepest path.
        let model = Counter { broken: false };
        let result = check(&model, 3);
        assert!(!result.complete());
        assert!(!result.passed(), "truncated exploration must not pass CI");
        assert!(result.violation.is_none(), "truncation is not a violation, it is worse");
        assert!(result.frontier > 0, "truncated run must report pending frontier states");
        assert!(!result.deepest_path.is_empty());
        // The deepest path must replay from init without hitting a
        // disabled step — it is a real prefix of the exploration.
        let mut s = model.init();
        for &tid in &result.deepest_path {
            assert!(model.enabled(&s, tid), "deepest path took a disabled step");
            model.step(&mut s, tid);
        }
        // A complete run reports an empty frontier.
        let full = check(&model, 10_000);
        assert!(full.complete() && full.passed());
        assert_eq!(full.frontier, 0);
    }

    /// Regression guard for the dedup key: two *distinct* states whose
    /// keys collide are merged, silently pruning exploration. The checker
    /// keys on the full `Debug` rendering precisely so that collisions
    /// can only come from a non-injective `Debug` impl — this test pins
    /// that contract by showing what a lossy key does: with a `Debug`
    /// that drops a field, the checker merges states differing only in
    /// that field and *misses a violation* it provably catches when the
    /// rendering is faithful. Anyone replacing the string key with a
    /// lossy hash (or writing a partial `Debug` on a model state) turns
    /// the checker into a rubber stamp; this test is the tripwire.
    struct Collider {
        faithful_debug: bool,
    }

    #[derive(Clone)]
    struct ColliderState {
        /// Two one-shot threads each set their flag.
        flags: [bool; 2],
        /// Set when thread 0 steps *before* thread 1 — an order-dependent
        /// fact invisible in `flags` alone.
        poison: bool,
        /// Whether `Debug` renders `poison`; constant across a run.
        faithful: bool,
    }

    impl Debug for ColliderState {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "flags={:?}", self.flags)?;
            if self.faithful {
                write!(f, " poison={:?}", self.poison)?;
            }
            Ok(())
        }
    }

    impl Model for Collider {
        type State = ColliderState;
        fn init(&self) -> ColliderState {
            ColliderState { flags: [false; 2], poison: false, faithful: self.faithful_debug }
        }
        fn threads(&self) -> usize {
            2
        }
        fn enabled(&self, s: &ColliderState, tid: usize) -> bool {
            !s.flags[tid]
        }
        fn step(&self, s: &mut ColliderState, tid: usize) {
            if tid == 0 && !s.flags[1] {
                s.poison = true;
            }
            s.flags[tid] = true;
        }
        fn invariant(&self, _s: &ColliderState) -> Result<(), String> {
            Ok(())
        }
        fn quiescent(&self, s: &ColliderState) -> Result<(), String> {
            if s.poison {
                return Err("poisoned terminal state".into());
            }
            Ok(())
        }
    }

    #[test]
    fn state_key_collisions_mask_violations() {
        // Faithful Debug: the two terminal states (thread 0 first →
        // poisoned; thread 1 first → clean) have distinct keys, both are
        // explored, and the poisoned one is reported.
        let caught = check(&Collider { faithful_debug: true }, 10_000);
        assert!(
            caught.violation.is_some(),
            "injective state key must expose the poisoned interleaving"
        );

        // Lossy Debug: both terminal states render as `flags=[true,
        // true]`. The clean interleaving is explored first (DFS pops the
        // thread-1 branch first), claims the key, and the poisoned twin
        // is silently deduped away — the checker reports a full, clean
        // exploration that proved nothing about the 0-first schedule.
        let masked = check(&Collider { faithful_debug: false }, 10_000);
        assert!(masked.complete());
        assert!(
            masked.violation.is_none(),
            "the lossy key should have masked the violation (if this fails, the \
             dedup strategy changed — re-derive this regression test)"
        );
        assert!(masked.states < caught.states, "collision must merge distinct states");
    }
}
