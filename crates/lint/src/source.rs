//! Per-file lint model: the token stream plus two derived overlays.
//!
//! * a **test mask** marking tokens inside `#[cfg(test)]` / `#[test]`
//!   items (and whole files that exist only as test modules), so passes
//!   that police production code skip tests for free;
//! * the **allow directives** — `// lint: allow(NAME): reason` comments —
//!   that exempt the line they sit on *and the next line* from the named
//!   pass. A directive without a reason is itself reported: the reason is
//!   the reviewable artifact, not the exemption.

use crate::lexer::{lex, Token};

/// Allow-directive names the linter recognizes; anything else is reported
/// as an unknown directive (usually a typo that silently exempts nothing).
pub const ALLOW_NAMES: &[&str] = &["unwrap", "raw-fs", "immutability", "lock-order", "id-range"];

/// One `// lint: allow(NAME): reason` comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The NAME inside the parentheses.
    pub name: String,
    /// Whether a non-empty reason follows the closing parenthesis.
    pub has_reason: bool,
}

/// A lexed source file with its lint overlays.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Token stream from [`lex`].
    pub toks: Vec<Token>,
    /// `test_mask[i]` is true when token `i` belongs to test-only code.
    pub test_mask: Vec<bool>,
    /// All allow directives found in comments, in file order.
    pub allows: Vec<AllowDirective>,
}

impl SourceFile {
    /// Lexes `text` and computes the overlays.
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let toks = lex(text);
        let test_mask = compute_test_mask(rel, &toks);
        let allows = scan_allow_directives(text);
        SourceFile { rel: rel.to_string(), toks, test_mask, allows }
    }

    /// True when an `allow(name)` directive covers `line` (the directive's
    /// own line, or the directive sits on the line directly above).
    pub fn is_allowed(&self, line: u32, name: &str) -> bool {
        self.allows.iter().any(|a| a.name == name && (a.line == line || a.line + 1 == line))
    }
}

/// Whole files that are test-only by construction: integration-test trees
/// (`tests/` directories inside a crate) and `*_tests.rs` modules that a
/// lib root includes under `#[cfg(test)]`.
fn path_is_test_only(rel: &str) -> bool {
    let in_tests_dir = rel.split('/').rev().skip(1).any(|comp| comp == "tests");
    in_tests_dir || rel.ends_with("_tests.rs")
}

fn compute_test_mask(rel: &str, toks: &[Token]) -> Vec<bool> {
    if path_is_test_only(rel) {
        return vec![true; toks.len()];
    }
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        // Outer attribute `#[...]` (inner `#![...]` never marks tests).
        let j = i + 1;
        if j < toks.len() && toks[j].is_punct('!') {
            i = j + 1;
            continue;
        }
        if j >= toks.len() || !toks[j].is_punct('[') {
            i += 1;
            continue;
        }
        let attr_end = match matching_close(toks, j, '[', ']') {
            Some(e) => e,
            None => break,
        };
        if attr_is_test(&toks[j + 1..attr_end]) {
            // Skip any further attributes on the same item, then mark the
            // item's body (first `{`..matching `}`) or through the `;` of
            // a bodiless item.
            let mut k = attr_end + 1;
            while k + 1 < toks.len() && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                match matching_close(toks, k + 1, '[', ']') {
                    Some(e) => k = e + 1,
                    None => break,
                }
            }
            let mut body_end = toks.len() - 1;
            let mut m = k;
            while m < toks.len() {
                if toks[m].is_punct('{') {
                    body_end = matching_close(toks, m, '{', '}').unwrap_or(toks.len() - 1);
                    break;
                }
                if toks[m].is_punct(';') {
                    body_end = m;
                    break;
                }
                m += 1;
            }
            for slot in mask.iter_mut().take(body_end + 1).skip(i) {
                *slot = true;
            }
            i = body_end + 1;
            continue;
        }
        i = attr_end + 1;
    }
    mask
}

/// True for `#[test]`, `#[cfg(test)]`, and any `cfg` attribute whose
/// predicate mentions `test` (e.g. `cfg(all(test, feature = "x"))`).
fn attr_is_test(attr: &[Token]) -> bool {
    if attr.len() == 1 && attr[0].is_ident("test") {
        return true;
    }
    attr.first().map(|t| t.is_ident("cfg")).unwrap_or(false)
        && attr.iter().any(|t| t.is_ident("test"))
}

/// Index of the token closing the bracket opened at `open_idx`, handling
/// nesting of the same bracket pair.
pub fn matching_close(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

fn scan_allow_directives(text: &str) -> Vec<AllowDirective> {
    // A directive is a whole-line `//` comment (never `//!`/`///` docs,
    // never a trailing comment, never text inside a string literal that
    // merely *mentions* the syntax — e.g. this linter's own messages).
    const PREFIX: &str = "// lint: allow(";
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with(PREFIX) {
            continue;
        }
        let after = &trimmed[PREFIX.len()..];
        let Some(close) = after.find(')') else { continue };
        let name = after[..close].trim().to_string();
        let rest = after[close + 1..].trim_start();
        let has_reason = rest.starts_with(':') && !rest.trim_start_matches(':').trim().is_empty();
        out.push(AllowDirective { line: idx as u32 + 1, name, has_reason });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn prod2() {}";
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        let masked: Vec<_> = sf
            .toks
            .iter()
            .zip(&sf.test_mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(masked, vec![false, true]);
        // Code after the test module is unmasked again.
        let prod2 = sf.toks.iter().position(|t| t.is_ident("prod2")).unwrap();
        assert!(!sf.test_mask[prod2]);
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn p() { b.unwrap(); }";
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        let flags: Vec<_> = sf
            .toks
            .iter()
            .zip(&sf.test_mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn tests_dir_and_suffix_are_whole_file_tests() {
        let sf = SourceFile::parse("tests/tests/integration.rs", "fn f() { x.unwrap(); }");
        assert!(sf.test_mask.iter().all(|&m| m));
        let sf = SourceFile::parse("crates/core/src/engine_tests.rs", "fn f() {}");
        assert!(sf.test_mask.iter().all(|&m| m));
    }

    #[test]
    fn allow_directive_parsing_and_reach() {
        let src = "// lint: allow(unwrap): checked above\nlet x = y.unwrap();\n// lint: allow(raw-fs)\nlet z = 1;";
        let sf = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(sf.is_allowed(2, "unwrap"));
        assert!(!sf.is_allowed(2, "raw-fs"));
        assert!(sf.is_allowed(4, "raw-fs"));
        assert!(!sf.is_allowed(3, "unwrap"));
        let no_reason: Vec<_> = sf.allows.iter().filter(|a| !a.has_reason).collect();
        assert_eq!(no_reason.len(), 1);
        assert_eq!(no_reason[0].name, "raw-fs");
    }
}
