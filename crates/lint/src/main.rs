//! CLI driver for the workspace linter and model checker.
//!
//! ```text
//! mhd-lint [--root DIR] [--json] [--baseline FILE] [--write-baseline FILE]
//!          [--skip-mck] [--mck-only] [--max-states N]
//!          [--mutant flush-order|ring-prune|gc-protect|splice-order]
//! ```
//!
//! Exit codes: `0` clean (or all findings baselined), `1` new findings /
//! model-checker violation / truncated exploration, `2` usage error.
//!
//! `--mutant` inverts the contract: it seeds a historical bug into the
//! named model and exits `0` only if the checker *catches* it — CI runs
//! every mutant so the checker can never silently degrade into a rubber
//! stamp.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use mhd_lint::mck::{check, CheckResult};
use mhd_lint::models::{FlushModel, GcProtectModel, RingModel};
use mhd_lint::{Baseline, Finding, Workspace};
use serde_json::{Number, Value};

struct Options {
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    skip_mck: bool,
    mck_only: bool,
    max_states: usize,
    mutant: Option<String>,
}

/// `println!` that survives a closed stdout (`mhd-lint | head` must not
/// panic on EPIPE — the exit code is the contract, the text is advisory).
macro_rules! out {
    ($($arg:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($arg)*);
    };
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mhd-lint [--root DIR] [--json] [--baseline FILE] \
         [--write-baseline FILE] [--skip-mck] [--mck-only] [--max-states N] \
         [--mutant flush-order|ring-prune|gc-protect|splice-order]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        baseline: None,
        write_baseline: None,
        skip_mck: false,
        mck_only: false,
        max_states: 5_000_000,
        mutant: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| {
                eprintln!("mhd-lint: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--json" => opts.json = true,
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(value("--write-baseline")?))
            }
            "--skip-mck" => opts.skip_mck = true,
            "--mck-only" => opts.mck_only = true,
            "--max-states" => {
                opts.max_states = value("--max-states")?.parse().map_err(|_| {
                    eprintln!("mhd-lint: --max-states needs an integer");
                    usage()
                })?
            }
            "--mutant" => opts.mutant = Some(value("--mutant")?),
            _ => {
                eprintln!("mhd-lint: unknown flag {arg}");
                return Err(usage());
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    if let Some(mutant) = &opts.mutant {
        return run_mutant(mutant, opts.max_states);
    }

    // Static passes.
    let mut findings = Vec::new();
    if !opts.mck_only {
        let ws = match Workspace::load(&opts.root) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("mhd-lint: cannot load workspace at {}: {e}", opts.root.display());
                return ExitCode::from(2);
            }
        };
        findings = mhd_lint::run_passes(&ws);
    }

    // Model checking: the shipped protocols, exhaustively.
    let mut mck_results: Vec<(&str, CheckResult)> = Vec::new();
    if !opts.skip_mck {
        mck_results.push(("flush-order", check(&FlushModel::shipped(), opts.max_states)));
        mck_results.push(("ring-prune", check(&RingModel::shipped(), opts.max_states)));
        mck_results.push(("gc-protect", check(&GcProtectModel::shipped(), opts.max_states)));
        for (name, result) in &mck_results {
            if let Some(v) = &result.violation {
                findings.push(Finding {
                    pass: "MCK",
                    file: format!("model:{name}"),
                    line: 0,
                    message: format!("{} [schedule {:?}]", v.message, v.schedule),
                });
            } else if result.truncated {
                findings.push(Finding {
                    pass: "MCK",
                    file: format!("model:{name}"),
                    line: 0,
                    message: format!(
                        "exploration truncated at {} states; raise --max-states",
                        result.states
                    ),
                });
            }
        }
    }

    if let Some(path) = &opts.write_baseline {
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(path, baseline.to_json()) {
            eprintln!("mhd-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("mhd-lint: wrote baseline covering {} finding(s)", findings.len());
    }

    let baseline = match &opts.baseline {
        None => Baseline::default(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match Baseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("mhd-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("mhd-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
    };
    let ratchet = baseline.ratchet(findings);

    if opts.json {
        out!("{}", report_json(&ratchet.new, &ratchet.baselined, &mck_results));
    } else {
        for f in &ratchet.new {
            out!("{}:{}: [{}] {}", f.file, f.line, f.pass, f.message);
        }
        for (name, result) in &mck_results {
            out!(
                "model {name}: {} states explored{}",
                result.states,
                if result.passed() { ", no violations" } else { "" }
            );
        }
        out!(
            "mhd-lint: {} new finding(s), {} baselined",
            ratchet.new.len(),
            ratchet.baselined.len()
        );
    }
    if ratchet.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Runs a seeded-bug model and succeeds only when the checker catches it.
fn run_mutant(name: &str, max_states: usize) -> ExitCode {
    let result = match name {
        "flush-order" => check(&FlushModel::mutant_flush_order(), max_states),
        "ring-prune" => check(&RingModel::mutant_ring_prune(), max_states),
        "gc-protect" => check(&GcProtectModel::mutant_gc_protect(), max_states),
        "splice-order" => check(&GcProtectModel::mutant_splice_order(), max_states),
        _ => {
            eprintln!(
                "mhd-lint: unknown mutant {name:?} (flush-order, ring-prune, gc-protect, \
                 splice-order)"
            );
            return ExitCode::from(2);
        }
    };
    match result.violation {
        Some(v) => {
            out!(
                "mutant {name}: caught as intended after {} states\n  {}\n  schedule: {:?}",
                result.states,
                v.message,
                v.schedule
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "mutant {name}: NOT caught ({} states, truncated: {}) — \
                 the model checker has lost its teeth",
                result.states, result.truncated
            );
            ExitCode::from(1)
        }
    }
}

fn finding_value(f: &Finding, baselined: bool) -> Value {
    Value::Object(vec![
        ("pass".into(), Value::String(f.pass.to_string())),
        ("file".into(), Value::String(f.file.clone())),
        ("line".into(), Value::Number(Number::U64(f.line as u64))),
        ("message".into(), Value::String(f.message.clone())),
        ("baselined".into(), Value::Bool(baselined)),
    ])
}

fn report_json(new: &[Finding], baselined: &[Finding], mck: &[(&str, CheckResult)]) -> String {
    let mut findings: Vec<Value> = new.iter().map(|f| finding_value(f, false)).collect();
    findings.extend(baselined.iter().map(|f| finding_value(f, true)));
    let models: Vec<Value> = mck
        .iter()
        .map(|(name, r)| {
            Value::Object(vec![
                ("model".into(), Value::String(name.to_string())),
                ("states".into(), Value::Number(Number::U64(r.states as u64))),
                ("truncated".into(), Value::Bool(r.truncated)),
                ("passed".into(), Value::Bool(r.passed())),
            ])
        })
        .collect();
    let top = Value::Object(vec![
        ("new".into(), Value::Number(Number::U64(new.len() as u64))),
        ("baselined".into(), Value::Number(Number::U64(baselined.len() as u64))),
        ("findings".into(), Value::Array(findings)),
        ("models".into(), Value::Array(models)),
    ]);
    serde_json::to_string_pretty(&top).expect("report Value serializes")
}
