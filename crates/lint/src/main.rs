//! CLI driver for the workspace linter and model checker.
//!
//! ```text
//! mhd-lint [--root DIR] [--json] [--sarif FILE] [--baseline FILE]
//!          [--write-baseline FILE] [--skip-mck] [--mck-only]
//!          [--model NAME] [--max-states N] [--require-complete]
//!          [--mutant flush-order|ring-prune|gc-protect|splice-order|
//!                    publish-epoch|intent-retire|compact-sweep]
//! ```
//!
//! Exit codes: `0` clean (or all findings baselined), `1` new findings /
//! model-checker violation / truncated exploration, `2` usage error.
//!
//! The shipped-model suite (flush-order, ring-prune, gc-protect, publish,
//! intent, compact-gc) runs each model on its own thread — the models are
//! independent state spaces, so the wall-clock cost is the largest one,
//! not the sum. `--model NAME` restricts the suite to one model;
//! `--require-complete` turns *any* truncated exploration into a hard
//! failure even if a baseline would have absorbed the finding.
//!
//! `--mutant` inverts the contract: it seeds a historical bug into the
//! named model and exits `0` only if the checker *catches* it — CI runs
//! every mutant so the checker can never silently degrade into a rubber
//! stamp.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use mhd_lint::mck::{check, CheckResult};
use mhd_lint::models::{
    CompactGcModel, FlushModel, GcProtectModel, IntentModel, PublishModel, RingModel,
};
use mhd_lint::{to_sarif, Baseline, Finding, Workspace};
use serde_json::{Number, Value};

struct Options {
    root: PathBuf,
    json: bool,
    sarif: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    skip_mck: bool,
    mck_only: bool,
    model: Option<String>,
    max_states: usize,
    require_complete: bool,
    mutant: Option<String>,
}

/// `println!` that survives a closed stdout (`mhd-lint | head` must not
/// panic on EPIPE — the exit code is the contract, the text is advisory).
macro_rules! out {
    ($($arg:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($arg)*);
    };
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mhd-lint [--root DIR] [--json] [--sarif FILE] [--baseline FILE] \
         [--write-baseline FILE] [--skip-mck] [--mck-only] [--model NAME] \
         [--max-states N] [--require-complete] \
         [--mutant flush-order|ring-prune|gc-protect|splice-order|publish-epoch|\
         intent-retire|compact-sweep]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        sarif: None,
        baseline: None,
        write_baseline: None,
        skip_mck: false,
        mck_only: false,
        model: None,
        max_states: 5_000_000,
        require_complete: false,
        mutant: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| {
                eprintln!("mhd-lint: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--json" => opts.json = true,
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(value("--write-baseline")?))
            }
            "--sarif" => opts.sarif = Some(PathBuf::from(value("--sarif")?)),
            "--skip-mck" => opts.skip_mck = true,
            "--mck-only" => opts.mck_only = true,
            "--model" => opts.model = Some(value("--model")?),
            "--require-complete" => opts.require_complete = true,
            "--max-states" => {
                opts.max_states = value("--max-states")?.parse().map_err(|_| {
                    eprintln!("mhd-lint: --max-states needs an integer");
                    usage()
                })?
            }
            "--mutant" => opts.mutant = Some(value("--mutant")?),
            _ => {
                eprintln!("mhd-lint: unknown flag {arg}");
                return Err(usage());
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    if let Some(mutant) = &opts.mutant {
        return run_mutant(mutant, opts.max_states);
    }

    // Static passes.
    let mut findings = Vec::new();
    if !opts.mck_only {
        let ws = match Workspace::load(&opts.root) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("mhd-lint: cannot load workspace at {}: {e}", opts.root.display());
                return ExitCode::from(2);
            }
        };
        findings = mhd_lint::run_passes(&ws);
    }

    // Model checking: the shipped protocols, exhaustively, one thread
    // per model (independent state spaces — wall-clock is the largest
    // model, not the sum).
    let mut mck_results: Vec<(&'static str, CheckResult)> = Vec::new();
    if !opts.skip_mck {
        mck_results = match shipped_suite(opts.model.as_deref(), opts.max_states) {
            Ok(results) => results,
            Err(code) => return code,
        };
        for (name, result) in &mck_results {
            if let Some(v) = &result.violation {
                findings.push(Finding {
                    pass: "MCK",
                    file: format!("model:{name}"),
                    line: 0,
                    message: format!("{} [schedule {:?}]", v.message, v.schedule),
                });
            } else if result.truncated {
                findings.push(Finding {
                    pass: "MCK",
                    file: format!("model:{name}"),
                    line: 0,
                    message: format!(
                        "exploration truncated at {} states with {} frontier state(s) \
                         unexplored (deepest path: {} steps {:?}); raise --max-states",
                        result.states,
                        result.frontier,
                        result.deepest_path.len(),
                        result.deepest_path
                    ),
                });
            }
        }
    }

    if let Some(path) = &opts.write_baseline {
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(path, baseline.to_json()) {
            eprintln!("mhd-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("mhd-lint: wrote baseline covering {} finding(s)", findings.len());
    }

    let baseline = match &opts.baseline {
        None => Baseline::default(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match Baseline::from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("mhd-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("mhd-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
    };
    let ratchet = baseline.ratchet(findings);

    if let Some(path) = &opts.sarif {
        if let Err(e) = std::fs::write(path, to_sarif(&ratchet.new, &ratchet.baselined)) {
            eprintln!("mhd-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if opts.json {
        out!("{}", report_json(&ratchet.new, &ratchet.baselined, &mck_results));
    } else {
        for f in &ratchet.new {
            out!("{}:{}: [{}] {}", f.file, f.line, f.pass, f.message);
        }
        for (name, result) in &mck_results {
            out!(
                "model {name}: {} states explored{}",
                result.states,
                if result.passed() {
                    ", no violations".to_string()
                } else if result.truncated {
                    format!(", TRUNCATED ({} frontier state(s) abandoned)", result.frontier)
                } else {
                    String::new()
                }
            );
        }
        out!(
            "mhd-lint: {} new finding(s), {} baselined",
            ratchet.new.len(),
            ratchet.baselined.len()
        );
    }
    // An incomplete exploration proves nothing: under --require-complete
    // it fails the run outright, baseline or no baseline.
    let incomplete = mck_results.iter().any(|(_, r)| !r.complete());
    if opts.require_complete && incomplete {
        eprintln!("mhd-lint: --require-complete: a model exploration was truncated");
        return ExitCode::from(1);
    }
    if ratchet.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Checks each shipped model on its own thread; `only` restricts the
/// suite to one model by name.
fn shipped_suite(
    only: Option<&str>,
    max_states: usize,
) -> Result<Vec<(&'static str, CheckResult)>, ExitCode> {
    type Runner = Box<dyn FnOnce(usize) -> CheckResult + Send>;
    let runners: Vec<(&'static str, Runner)> = vec![
        ("flush-order", Box::new(|n| check(&FlushModel::shipped(), n))),
        ("ring-prune", Box::new(|n| check(&RingModel::shipped(), n))),
        ("gc-protect", Box::new(|n| check(&GcProtectModel::shipped(), n))),
        ("publish", Box::new(|n| check(&PublishModel::shipped(), n))),
        ("intent", Box::new(|n| check(&IntentModel::shipped(), n))),
        ("compact-gc", Box::new(|n| check(&CompactGcModel::shipped(), n))),
    ];
    if let Some(name) = only {
        if !runners.iter().any(|(n, _)| *n == name) {
            let known: Vec<&str> = runners.iter().map(|(n, _)| *n).collect();
            eprintln!("mhd-lint: unknown model {name:?} (known: {})", known.join(", "));
            return Err(ExitCode::from(2));
        }
    }
    let selected: Vec<(&'static str, Runner)> =
        runners.into_iter().filter(|(n, _)| only.is_none_or(|o| o == *n)).collect();
    Ok(std::thread::scope(|s| {
        let handles: Vec<_> = selected
            .into_iter()
            .map(|(name, run)| (name, s.spawn(move || run(max_states))))
            .collect();
        handles
            .into_iter()
            .map(|(name, h)| (name, h.join().expect("model thread does not panic")))
            .collect()
    }))
}

/// Runs a seeded-bug model and succeeds only when the checker catches it.
fn run_mutant(name: &str, max_states: usize) -> ExitCode {
    let result = match name {
        "flush-order" => check(&FlushModel::mutant_flush_order(), max_states),
        "ring-prune" => check(&RingModel::mutant_ring_prune(), max_states),
        "gc-protect" => check(&GcProtectModel::mutant_gc_protect(), max_states),
        "splice-order" => check(&GcProtectModel::mutant_splice_order(), max_states),
        "publish-epoch" => check(&PublishModel::mutant_publish_epoch(), max_states),
        "intent-retire" => check(&IntentModel::mutant_intent_retire(), max_states),
        "compact-sweep" => check(&CompactGcModel::mutant_compact_sweep(), max_states),
        _ => {
            eprintln!(
                "mhd-lint: unknown mutant {name:?} (flush-order, ring-prune, gc-protect, \
                 splice-order, publish-epoch, intent-retire, compact-sweep)"
            );
            return ExitCode::from(2);
        }
    };
    match result.violation {
        Some(v) => {
            out!(
                "mutant {name}: caught as intended after {} states\n  {}\n  schedule: {:?}",
                result.states,
                v.message,
                v.schedule
            );
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "mutant {name}: NOT caught ({} states, truncated: {}) — \
                 the model checker has lost its teeth",
                result.states, result.truncated
            );
            ExitCode::from(1)
        }
    }
}

fn finding_value(f: &Finding, baselined: bool) -> Value {
    Value::Object(vec![
        ("pass".into(), Value::String(f.pass.to_string())),
        ("file".into(), Value::String(f.file.clone())),
        ("line".into(), Value::Number(Number::U64(f.line as u64))),
        ("message".into(), Value::String(f.message.clone())),
        ("baselined".into(), Value::Bool(baselined)),
    ])
}

fn report_json(new: &[Finding], baselined: &[Finding], mck: &[(&str, CheckResult)]) -> String {
    let mut findings: Vec<Value> = new.iter().map(|f| finding_value(f, false)).collect();
    findings.extend(baselined.iter().map(|f| finding_value(f, true)));
    let models: Vec<Value> = mck
        .iter()
        .map(|(name, r)| {
            Value::Object(vec![
                ("model".into(), Value::String(name.to_string())),
                ("states".into(), Value::Number(Number::U64(r.states as u64))),
                ("truncated".into(), Value::Bool(r.truncated)),
                ("complete".into(), Value::Bool(r.complete())),
                ("frontier".into(), Value::Number(Number::U64(r.frontier as u64))),
                (
                    "deepest_path".into(),
                    Value::Array(
                        r.deepest_path
                            .iter()
                            .map(|&t| Value::Number(Number::U64(t as u64)))
                            .collect(),
                    ),
                ),
                ("passed".into(), Value::Bool(r.passed())),
            ])
        })
        .collect();
    let top = Value::Object(vec![
        ("new".into(), Value::Number(Number::U64(new.len() as u64))),
        ("baselined".into(), Value::Number(Number::U64(baselined.len() as u64))),
        ("findings".into(), Value::Array(findings)),
        ("models".into(), Value::Array(models)),
    ]);
    serde_json::to_string_pretty(&top).expect("report Value serializes")
}
