//! Concrete [`Model`]s of the workspace's two real concurrent protocols.
//!
//! * [`FlushModel`] — the `BatchedDirBackend` flush-barrier protocol: a
//!   coordinator drains the pending overlay kind-by-kind in
//!   `FileKind::FLUSH_ORDER` (taken from the *real* constant, so the model
//!   checks the shipped order, not a transcription), with a barrier
//!   between kinds; workers claim jobs and write them to disk. The
//!   invariant at every state — i.e. every crash point — is that nothing
//!   on disk references anything not on disk.
//! * [`RingModel`] — the trace-ring registry: recorder threads register a
//!   per-thread ring, push events, and exit; a drainer collects events
//!   and prunes dead rings. The checked property is that no drained-event
//!   is ever lost — the exact bug class of pruning a dead-but-nonempty
//!   ring (which the workspace's `prune_dead_threads` once had).
//! * [`GcProtectModel`] — the daemon's watermark-protected mark-sweep
//!   (`mhd-daemon`'s `SessionRegistry` + `mhd_core::gc::collect_protected`)
//!   racing two-phase commits: writer sessions register the allocation
//!   watermark at `BEGIN`, run their dedup pipeline outside the lock,
//!   then reserve an id, splice the chunk, and publish the recipe; the
//!   collector's sweep cutoff is the minimum over its own watermark and
//!   every registered one. The invariant is that no recipe ever
//!   references a chunk missing from disk — whether because GC swept it
//!   or because the publish ran before the splice — and quiescence
//!   additionally requires pre-existing garbage to actually be reclaimed
//!   (so "protect everything" cannot pass either).
//!
//! Each model has a `mutant` constructor seeding the historical bug, used
//! as a negative test: CI runs the mutants and *requires* the checker to
//! catch them, so the checker itself cannot rot into a rubber stamp.

use mhd_store::FileKind;

use crate::mck::Model;

// ---------------------------------------------------------------------
// Flush-barrier protocol
// ---------------------------------------------------------------------

/// One pending object in the modelled flush workload.
#[derive(Debug, Clone, Copy)]
struct Obj {
    name: &'static str,
    kind: FileKind,
    /// Indices into [`WORKLOAD`] this object references on disk.
    refs: &'static [usize],
}

/// A minimal workload exercising every reference edge the store has:
/// a Manifest referencing two DiskChunks, a Hook referencing the
/// Manifest, and a FileManifest referencing a DiskChunk.
const WORKLOAD: &[Obj] = &[
    Obj { name: "chunk-a", kind: FileKind::DiskChunk, refs: &[] },
    Obj { name: "chunk-b", kind: FileKind::DiskChunk, refs: &[] },
    Obj { name: "manifest", kind: FileKind::Manifest, refs: &[0, 1] },
    Obj { name: "hook", kind: FileKind::Hook, refs: &[2] },
    Obj { name: "recipe", kind: FileKind::FileManifest, refs: &[0] },
];

/// Model of the batched backend's kind-ordered, barriered flush.
pub struct FlushModel {
    order: Vec<FileKind>,
    workers: usize,
}

impl FlushModel {
    /// The shipped protocol: flush in `FileKind::FLUSH_ORDER` with two
    /// workers racing within each kind.
    pub fn shipped() -> FlushModel {
        FlushModel { order: FileKind::FLUSH_ORDER.to_vec(), workers: 2 }
    }

    /// The seeded bug: the flush order reversed, so referrers hit disk
    /// before their referees. The checker must reject this.
    pub fn mutant_flush_order() -> FlushModel {
        let mut order = FileKind::FLUSH_ORDER.to_vec();
        order.reverse();
        FlushModel { order, workers: 2 }
    }
}

/// Flush-protocol state. `claimed` holds the job each worker has taken
/// off the queue but not yet written — a crash there loses the write, a
/// reference check there sees the claim's referee status as-is.
#[derive(Debug, Clone)]
pub struct FlushState {
    kind_idx: usize,
    queue: Vec<usize>,
    claimed: Vec<Option<usize>>,
    disk: [bool; 5],
    done: bool,
}

fn jobs_of(kind: FileKind) -> Vec<usize> {
    (0..WORKLOAD.len()).filter(|&i| WORKLOAD[i].kind == kind).collect()
}

impl Model for FlushModel {
    type State = FlushState;

    fn init(&self) -> FlushState {
        FlushState {
            kind_idx: 0,
            queue: jobs_of(self.order[0]),
            claimed: vec![None; self.workers],
            disk: [false; 5],
            done: false,
        }
    }

    fn threads(&self) -> usize {
        1 + self.workers
    }

    fn enabled(&self, s: &FlushState, tid: usize) -> bool {
        if s.done {
            return false;
        }
        if tid == 0 {
            // The coordinator advances to the next kind only at the
            // barrier: queue drained and every worker's write retired.
            s.queue.is_empty() && s.claimed.iter().all(Option::is_none)
        } else {
            s.claimed[tid - 1].is_some() || !s.queue.is_empty()
        }
    }

    fn step(&self, s: &mut FlushState, tid: usize) {
        if tid == 0 {
            s.kind_idx += 1;
            if s.kind_idx == self.order.len() {
                s.done = true;
            } else {
                s.queue = jobs_of(self.order[s.kind_idx]);
            }
        } else if let Some(obj) = s.claimed[tid - 1].take() {
            s.disk[obj] = true;
        } else {
            s.claimed[tid - 1] = s.queue.pop();
        }
    }

    fn invariant(&self, s: &FlushState) -> Result<(), String> {
        // Every state is a crash point: if the process dies here, what is
        // on disk must be self-contained.
        for (i, obj) in WORKLOAD.iter().enumerate() {
            if !s.disk[i] {
                continue;
            }
            for &r in obj.refs {
                if !s.disk[r] {
                    return Err(format!(
                        "crash point with {} on disk but its referee {} missing \
                         (flush order {:?})",
                        obj.name, WORKLOAD[r].name, self.order
                    ));
                }
            }
        }
        Ok(())
    }

    fn quiescent(&self, s: &FlushState) -> Result<(), String> {
        if !s.done {
            return Err("deadlock: flush never completed".into());
        }
        if let Some(i) = (0..WORKLOAD.len()).find(|&i| !s.disk[i]) {
            return Err(format!("lost write: {} never reached disk", WORKLOAD[i].name));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Trace-ring registry pruning
// ---------------------------------------------------------------------

/// Model of the per-thread trace-ring registry with a draining collector.
pub struct RingModel {
    recorders: usize,
    /// The shipped prune rule keeps dead rings until drained empty; the
    /// mutant prunes any dead ring, stranding undrained events.
    prune_requires_empty: bool,
}

impl RingModel {
    /// The shipped protocol: prune only rings that are both dead and
    /// drained empty.
    pub fn shipped() -> RingModel {
        RingModel { recorders: 2, prune_requires_empty: true }
    }

    /// The seeded bug: prune every dead ring, even with undrained events
    /// still queued — the historical race where a recorder pushes between
    /// the drainer's collection and its prune. The checker must catch it.
    pub fn mutant_ring_prune() -> RingModel {
        RingModel { recorders: 2, prune_requires_empty: false }
    }
}

/// Recorder lifecycle position: start → registered → pushed → exited.
const REC_START: u8 = 0;
const REC_REGISTERED: u8 = 1;
const REC_EXITED: u8 = 3;

/// Drainer position: two passes over the rings (one racing the
/// recorders, one final pass after all recorders have exited — matching
/// `trace_drain` being called after worker threads are joined), each ring
/// visited as drain-then-prune.
#[derive(Debug, Clone)]
pub struct RingState {
    rec_pc: Vec<u8>,
    in_registry: Vec<bool>,
    ring_events: Vec<u8>,
    pushed: u8,
    drained: u8,
    d_pass: u8,
    d_idx: usize,
    d_phase: u8,
}

impl Model for RingModel {
    type State = RingState;

    fn init(&self) -> RingState {
        RingState {
            rec_pc: vec![REC_START; self.recorders],
            in_registry: vec![false; self.recorders],
            ring_events: vec![0; self.recorders],
            pushed: 0,
            drained: 0,
            d_pass: 0,
            d_idx: 0,
            d_phase: 0,
        }
    }

    fn threads(&self) -> usize {
        1 + self.recorders
    }

    fn enabled(&self, s: &RingState, tid: usize) -> bool {
        if tid == 0 {
            match s.d_pass {
                0 => true,
                // The final drain runs after every recorder has exited.
                1 => s.rec_pc.iter().all(|&pc| pc == REC_EXITED),
                _ => false,
            }
        } else {
            s.rec_pc[tid - 1] < REC_EXITED
        }
    }

    fn step(&self, s: &mut RingState, tid: usize) {
        if tid == 0 {
            let i = s.d_idx;
            if s.in_registry[i] && s.d_phase == 0 {
                // Collect this ring's events.
                s.drained += s.ring_events[i];
                s.ring_events[i] = 0;
                s.d_phase = 1;
                return;
            }
            if s.in_registry[i] && s.d_phase == 1 {
                let dead = s.rec_pc[i] == REC_EXITED;
                if dead && (s.ring_events[i] == 0 || !self.prune_requires_empty) {
                    s.in_registry[i] = false;
                }
            }
            s.d_phase = 0;
            s.d_idx += 1;
            if s.d_idx == self.recorders {
                s.d_idx = 0;
                s.d_pass += 1;
            }
        } else {
            let r = tid - 1;
            match s.rec_pc[r] {
                REC_START => s.in_registry[r] = true,
                REC_REGISTERED => {
                    // The push lands in the ring whether or not the
                    // registry still lists it — the recorder holds its
                    // own handle; a pruned ring's events are unreachable.
                    s.ring_events[r] += 1;
                    s.pushed += 1;
                }
                _ => {}
            }
            s.rec_pc[r] += 1;
        }
    }

    fn invariant(&self, s: &RingState) -> Result<(), String> {
        for (i, &listed) in s.in_registry.iter().enumerate() {
            if !listed && s.ring_events[i] > 0 {
                return Err(format!(
                    "ring {i} pruned from the registry with {} undrained event(s): \
                     they can never be collected",
                    s.ring_events[i]
                ));
            }
        }
        Ok(())
    }

    fn quiescent(&self, s: &RingState) -> Result<(), String> {
        if s.drained != s.pushed {
            return Err(format!("event loss: {} pushed but only {} drained", s.pushed, s.drained));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Watermark-protected garbage collection (daemon sessions vs GC)
// ---------------------------------------------------------------------

/// Model of concurrent two-phase write sessions racing one protected
/// mark-sweep collection over a shared store with monotonic chunk ids.
///
/// Each writer is one daemon session running the shipped two-phase
/// commit: `register(watermark = next_id)` at `BEGIN` → run the dedup
/// *pipeline* outside the lock (a pure interleave point — it touches no
/// shared state) → *reserve* an id range (allocation only; nothing on
/// disk yet) → *splice* the chunk to disk → *publish* a recipe
/// referencing it → `deregister`. The collector runs a single mark-sweep
/// pass at an arbitrary point in the interleaving: *mark* snapshots the
/// sweep cutoff and the set of chunks referenced by recipes; *sweep* then
/// deletes unmarked chunks below the cutoff, one chunk per step (each
/// step is a crash/interleaving point).
///
/// The store starts with one pre-existing unreferenced chunk (id 0), so a
/// collector that protects everything fails quiescence just as surely as
/// one that protects nothing fails the invariant.
pub struct GcProtectModel {
    writers: usize,
    /// The shipped rule: the sweep cutoff honours registered session
    /// watermarks. The mutant ignores them (cutoff = the collector's own
    /// allocation watermark), deleting chunks a still-uncommitted session
    /// just wrote.
    honor_watermarks: bool,
    /// The shipped publish order splices chunks before publishing the
    /// recipes that reference them (`FLUSH_ORDER` discipline). The mutant
    /// flips the two steps, exposing a window where a recipe on disk
    /// references a chunk that is not.
    publish_before_splice: bool,
}

impl GcProtectModel {
    /// The shipped protocol: cutoff = min(own watermark, registered
    /// session watermarks); splice before publish.
    pub fn shipped() -> GcProtectModel {
        GcProtectModel { writers: 2, honor_watermarks: true, publish_before_splice: false }
    }

    /// The seeded bug: the cutoff ignores the session registry, so a
    /// session's freshly spliced, not-yet-referenced chunks are swept as
    /// garbage. The checker must catch it.
    pub fn mutant_gc_protect() -> GcProtectModel {
        GcProtectModel { writers: 2, honor_watermarks: false, publish_before_splice: false }
    }

    /// The seeded ordering bug: the publish phase writes a session's
    /// recipe before splicing its staged chunk, so every interleaving
    /// (and every crash point) between the two steps has a recipe
    /// referencing a chunk missing from disk. The checker must catch it.
    pub fn mutant_splice_order() -> GcProtectModel {
        GcProtectModel { writers: 2, honor_watermarks: true, publish_before_splice: true }
    }
}

/// Writer lifecycle position. `W_SPLICE_OR_PUBLISH` and
/// `W_PUBLISH_OR_SPLICE` are the two publish-phase steps whose order
/// [`GcProtectModel::publish_before_splice`] flips.
const W_REGISTER: u8 = 0;
const W_PIPELINE: u8 = 1;
const W_RESERVE: u8 = 2;
const W_SPLICE_OR_PUBLISH: u8 = 3;
const W_PUBLISH_OR_SPLICE: u8 = 4;
const W_DEREGISTER: u8 = 5;
const W_DONE: u8 = 6;

/// GC phase.
const GC_IDLE: u8 = 0;
const GC_MARKED: u8 = 1;
const GC_DONE: u8 = 2;

/// Protected-GC state. Chunk ids are indices into `disk`; id 0 is the
/// pre-existing garbage, writer `r` allocates id `r + 1`.
#[derive(Debug, Clone)]
pub struct GcProtectState {
    w_pc: Vec<u8>,
    /// Registered watermark per writer (`None` = not registered).
    watermark: Vec<Option<u8>>,
    /// Chunk id each writer reserved; on disk only after its splice step.
    w_chunk: Vec<Option<u8>>,
    /// Published recipes: the chunk id each references.
    recipes: Vec<Option<u8>>,
    next_id: u8,
    disk: Vec<bool>,
    gc_phase: u8,
    cutoff: u8,
    /// Mark snapshot: chunks referenced by a recipe at mark time.
    live: Vec<bool>,
    sweep_idx: usize,
}

impl Model for GcProtectModel {
    type State = GcProtectState;

    fn init(&self) -> GcProtectState {
        let slots = self.writers + 1;
        let mut disk = vec![false; slots];
        disk[0] = true; // pre-existing unreferenced garbage
        GcProtectState {
            w_pc: vec![W_REGISTER; self.writers],
            watermark: vec![None; self.writers],
            w_chunk: vec![None; self.writers],
            recipes: vec![None; self.writers],
            next_id: 1,
            disk,
            gc_phase: GC_IDLE,
            cutoff: 0,
            live: vec![false; slots],
            sweep_idx: 0,
        }
    }

    fn threads(&self) -> usize {
        1 + self.writers
    }

    fn enabled(&self, s: &GcProtectState, tid: usize) -> bool {
        if tid == 0 {
            s.gc_phase < GC_DONE
        } else {
            s.w_pc[tid - 1] < W_DONE
        }
    }

    fn step(&self, s: &mut GcProtectState, tid: usize) {
        if tid == 0 {
            if s.gc_phase == GC_IDLE {
                // Mark: snapshot cutoff and recipe-referenced chunks.
                s.cutoff = s.next_id;
                if self.honor_watermarks {
                    for wm in s.watermark.iter().flatten() {
                        s.cutoff = s.cutoff.min(*wm);
                    }
                }
                for c in s.recipes.iter().flatten() {
                    s.live[*c as usize] = true;
                }
                s.sweep_idx = 0;
                s.gc_phase = GC_MARKED;
            } else {
                // Sweep one chunk slot per step.
                let i = s.sweep_idx;
                if s.disk[i] && !s.live[i] && (i as u8) < s.cutoff {
                    s.disk[i] = false;
                }
                s.sweep_idx += 1;
                if s.sweep_idx == s.disk.len() {
                    s.gc_phase = GC_DONE;
                }
            }
        } else {
            let r = tid - 1;
            let splice = |s: &mut GcProtectState| {
                if let Some(id) = s.w_chunk[r] {
                    s.disk[id as usize] = true;
                }
            };
            let publish = |s: &mut GcProtectState| s.recipes[r] = s.w_chunk[r];
            match s.w_pc[r] {
                W_REGISTER => s.watermark[r] = Some(s.next_id),
                // The dedup pipeline runs outside the lock and touches no
                // shared state — modelled as a pure interleave point.
                W_PIPELINE => {}
                W_RESERVE => {
                    // Allocation only: the id is claimed but nothing is
                    // on disk until the splice step.
                    s.w_chunk[r] = Some(s.next_id);
                    s.next_id += 1;
                }
                W_SPLICE_OR_PUBLISH => {
                    if self.publish_before_splice {
                        publish(s);
                    } else {
                        splice(s);
                    }
                }
                W_PUBLISH_OR_SPLICE => {
                    if self.publish_before_splice {
                        splice(s);
                    } else {
                        publish(s);
                    }
                }
                W_DEREGISTER => s.watermark[r] = None,
                _ => {}
            }
            s.w_pc[r] += 1;
        }
    }

    fn invariant(&self, s: &GcProtectState) -> Result<(), String> {
        for (r, recipe) in s.recipes.iter().enumerate() {
            if let Some(c) = recipe {
                if !s.disk[*c as usize] {
                    return Err(format!(
                        "session {r}'s recipe references chunk {c}, which is not on \
                         disk — either GC swept it (cutoff {}, watermarks {:?}) or \
                         the recipe was published before its chunk was spliced",
                        s.cutoff, s.watermark
                    ));
                }
            }
        }
        Ok(())
    }

    fn quiescent(&self, s: &GcProtectState) -> Result<(), String> {
        if s.disk[0] {
            return Err("pre-existing garbage chunk 0 was never reclaimed".into());
        }
        for (r, recipe) in s.recipes.iter().enumerate() {
            match recipe {
                None => return Err(format!("session {r} never committed its recipe")),
                Some(c) if !s.disk[*c as usize] => {
                    return Err(format!("session {r}'s chunk {c} missing at quiescence"))
                }
                _ => {}
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Two-phase publish: epoch conflict validation + id-range remap
// ---------------------------------------------------------------------

/// Model-scale stand-in for the daemon's `LOCAL_ID_BASE` (`1 << 48`):
/// staging engines allocate private ids at or above this base, and the
/// publish remap (`local - base + reserved`) must strip it before
/// anything reaches the shared store. The arithmetic is identical to the
/// shipped `splice_locked`; only the magnitude is scaled down so ids fit
/// the model's `u8` state.
const MODEL_LOCAL_BASE: u8 = 100;

/// A conflicted model session re-runs its pipeline at most this many
/// times — enough for every schedule of [`PublishModel`]'s workload to
/// converge, small enough to keep the state space finite. Mirrors the
/// bounded `MAX_COMMIT_RETRIES` of the shipped protocol; a session that
/// exhausts it aborts, which the quiescent check rejects, so a conflict
/// rule that spuriously fires forever cannot pass either.
const MODEL_MAX_RETRIES: u8 = 2;

/// Model of the daemon's two-phase commit (`SharedStore::commit`): N
/// sessions race the lock-free dedup pipeline (phase 1) and the
/// serialized publish (phase 2).
///
/// Phase 1 snapshots the publish epoch, probes the shared store for each
/// content hash, and stages anything missed under a private id at or
/// above `MODEL_LOCAL_BASE` — exactly the staging-engine discipline
/// (`LOCAL_ID_BASE`, hook probes against the shared index). Phase 2 runs
/// atomically (it executes under the engine lock in the real protocol):
/// it validates the epoch log for publishes that raced the pipeline and
/// overlap its missed set (retry phase 1 if so), then reserves a
/// contiguous real-id range, remaps every staged id onto it, and writes
/// chunks, first-mapping-wins hooks, and the session's recipe.
///
/// The workload seeds the race the epoch log exists to catch: both
/// sessions ingest shared content `A` (session 1 also carries a private
/// `B`), so whichever publishes second *must* detect the conflict and
/// re-probe — skipping the check stores `A` twice and breaks dedup
/// exactness, which quiescence rejects.
///
/// Invariants at every state: nothing in the published store carries a
/// staging id (`>= MODEL_LOCAL_BASE`), no two sessions' reserved id
/// ranges overlap, and every published recipe references a chunk present
/// in the store.
pub struct PublishModel {
    sessions: usize,
    /// The shipped rule validates the epoch log before publishing; the
    /// mutant publishes blind, re-storing content a racing session
    /// already published.
    validate_epoch: bool,
    /// The shipped splice remaps staged ids onto the reserved range; the
    /// mutant writes the raw staging ids through.
    remap_ids: bool,
    /// The shipped reservation advances the allocator; the mutant hands
    /// every session the same base.
    advance_reservation: bool,
}

impl PublishModel {
    /// The shipped protocol: epoch-validated, remapped, disjoint ranges.
    pub fn shipped() -> PublishModel {
        PublishModel {
            sessions: 2,
            validate_epoch: true,
            remap_ids: true,
            advance_reservation: true,
        }
    }

    /// The seeded bug: phase 2 skips the epoch-log conflict check, so a
    /// pipeline raced by another session's publish stores shared content
    /// a second time. The checker must catch the broken dedup at
    /// quiescence.
    pub fn mutant_publish_epoch() -> PublishModel {
        PublishModel { validate_epoch: false, ..PublishModel::shipped() }
    }

    /// Test-only mutant: the splice writes staging ids through unmapped,
    /// leaking `>= MODEL_LOCAL_BASE` ids into the published store.
    pub fn mutant_no_remap() -> PublishModel {
        PublishModel { remap_ids: false, ..PublishModel::shipped() }
    }

    /// Test-only mutant: the id reservation never advances, so every
    /// session claims the same range.
    pub fn mutant_overlapping_reserve() -> PublishModel {
        PublishModel { advance_reservation: false, ..PublishModel::shipped() }
    }
}

/// Session position: snapshot epoch → run pipeline → publish (atomic).
const P_SNAPSHOT: u8 = 0;
const P_PIPELINE: u8 = 1;
const P_PUBLISH: u8 = 2;
const P_DONE: u8 = 3;

/// Content hashes in the publish workload. Session 0 ingests `[A]`,
/// session 1 ingests `[A, B]` — `A` is the shared content whose double
/// store the epoch log must prevent.
const CONTENT_A: u8 = 0;
const CONTENT_B: u8 = 1;

fn publish_workload(session: usize) -> &'static [u8] {
    if session == 0 {
        &[CONTENT_A]
    } else {
        &[CONTENT_A, CONTENT_B]
    }
}

/// One session's in-flight commit attempt.
#[derive(Debug, Clone)]
pub struct PublishSession {
    pc: u8,
    /// Epoch read before the pipeline ran.
    epoch0: u8,
    /// `(content, staging id)` pairs staged by the pipeline (the missed
    /// set); contents found published are recorded in `dups` instead.
    staged: Vec<(u8, u8)>,
    /// `(content, published chunk id)` resolved via the shared index.
    dups: Vec<(u8, u8)>,
    retries: u8,
    aborted: bool,
}

/// Shared-store + sessions state for [`PublishModel`].
#[derive(Debug, Clone)]
pub struct PublishState {
    sessions: Vec<PublishSession>,
    /// Published chunks: `(content, real id)` in publish order.
    store: Vec<(u8, u8)>,
    /// First-mapping-wins hook index: `(content, real id)`.
    hooks: Vec<(u8, u8)>,
    /// Recipes: per session, the chunk ids its manifest references.
    recipes: Vec<Option<Vec<u8>>>,
    /// Reserved `(base, len)` ranges, kept forever for the overlap check.
    reserved: Vec<(u8, u8)>,
    /// Real-id allocator.
    next_id: u8,
    /// Publish epoch + log of `(epoch, contents published)`.
    epoch: u8,
    publish_log: Vec<(u8, Vec<u8>)>,
}

impl Model for PublishModel {
    type State = PublishState;

    fn init(&self) -> PublishState {
        PublishState {
            sessions: vec![
                PublishSession {
                    pc: P_SNAPSHOT,
                    epoch0: 0,
                    staged: Vec::new(),
                    dups: Vec::new(),
                    retries: 0,
                    aborted: false,
                };
                self.sessions
            ],
            store: Vec::new(),
            hooks: Vec::new(),
            recipes: vec![None; self.sessions],
            reserved: Vec::new(),
            next_id: 0,
            epoch: 0,
            publish_log: Vec::new(),
        }
    }

    fn threads(&self) -> usize {
        self.sessions
    }

    fn enabled(&self, s: &PublishState, tid: usize) -> bool {
        s.sessions[tid].pc < P_DONE
    }

    fn step(&self, s: &mut PublishState, tid: usize) {
        match s.sessions[tid].pc {
            P_SNAPSHOT => {
                s.sessions[tid].epoch0 = s.epoch;
                s.sessions[tid].pc = P_PIPELINE;
            }
            P_PIPELINE => {
                // Probe the shared index per content; stage what's missed
                // under the next private id (the staging engine allocates
                // monotonically from its LOCAL_ID_BASE floor).
                let sess = &mut s.sessions[tid];
                sess.staged.clear();
                sess.dups.clear();
                let mut local = MODEL_LOCAL_BASE;
                for &content in publish_workload(tid) {
                    match s.hooks.iter().find(|(c, _)| *c == content) {
                        Some(&(_, id)) => sess.dups.push((content, id)),
                        None => {
                            sess.staged.push((content, local));
                            local += 1;
                        }
                    }
                }
                sess.pc = P_PUBLISH;
            }
            P_PUBLISH => {
                // Atomic in the model because the real phase 2 runs under
                // the engine lock; its durability ordering (splice in
                // FLUSH_ORDER) is covered by FlushModel/GcProtectModel.
                let missed: Vec<u8> = s.sessions[tid].staged.iter().map(|&(c, _)| c).collect();
                let epoch0 = s.sessions[tid].epoch0;
                let conflict = self.validate_epoch
                    && s.epoch != epoch0
                    && !missed.is_empty()
                    && s.publish_log
                        .iter()
                        .any(|(e, cs)| *e > epoch0 && cs.iter().any(|c| missed.contains(c)));
                if conflict {
                    let sess = &mut s.sessions[tid];
                    if sess.retries == MODEL_MAX_RETRIES {
                        sess.aborted = true;
                        sess.pc = P_DONE;
                    } else {
                        sess.retries += 1;
                        sess.pc = P_SNAPSHOT;
                    }
                    return;
                }
                let base = s.next_id;
                let span = s.sessions[tid].staged.len() as u8;
                s.reserved.push((base, span));
                if self.advance_reservation {
                    s.next_id += span;
                }
                let map = |id: u8| {
                    if self.remap_ids && id >= MODEL_LOCAL_BASE {
                        id - MODEL_LOCAL_BASE + base
                    } else {
                        id
                    }
                };
                let mut recipe = Vec::new();
                let staged = s.sessions[tid].staged.clone();
                for &(content, local) in &staged {
                    let real = map(local);
                    s.store.push((content, real));
                    // write_hook's exists-guard: first mapping wins.
                    if !s.hooks.iter().any(|(c, _)| *c == content) {
                        s.hooks.push((content, real));
                    }
                    recipe.push(real);
                }
                for &(_, id) in &s.sessions[tid].dups {
                    recipe.push(id);
                }
                s.recipes[tid] = Some(recipe);
                s.epoch += 1;
                let epoch = s.epoch;
                s.publish_log.push((epoch, missed));
                s.sessions[tid].pc = P_DONE;
            }
            _ => {}
        }
    }

    fn invariant(&self, s: &PublishState) -> Result<(), String> {
        for &(content, id) in &s.store {
            if id >= MODEL_LOCAL_BASE {
                return Err(format!(
                    "staging id {id} (content {content}) reached the published store: \
                     the splice failed to remap it below LOCAL_ID_BASE"
                ));
            }
        }
        for (i, &(base_a, len_a)) in s.reserved.iter().enumerate() {
            for &(base_b, len_b) in &s.reserved[i + 1..] {
                if len_a > 0 && len_b > 0 && base_a < base_b + len_b && base_b < base_a + len_a {
                    return Err(format!(
                        "id ranges overlap: [{base_a}, {}) and [{base_b}, {}) were both \
                         reserved",
                        base_a + len_a,
                        base_b + len_b
                    ));
                }
            }
        }
        for (r, recipe) in s.recipes.iter().enumerate() {
            if let Some(ids) = recipe {
                for id in ids {
                    if !s.store.iter().any(|(_, sid)| sid == id) {
                        return Err(format!(
                            "session {r}'s recipe references chunk id {id}, which is not \
                             in the published store"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn quiescent(&self, s: &PublishState) -> Result<(), String> {
        for (r, sess) in s.sessions.iter().enumerate() {
            if sess.aborted {
                return Err(format!(
                    "session {r} exhausted its {MODEL_MAX_RETRIES} retries: the conflict \
                     rule fired on every attempt"
                ));
            }
            if s.recipes[r].is_none() {
                return Err(format!("session {r} never published its recipe"));
            }
        }
        for content in [CONTENT_A, CONTENT_B] {
            let copies = s.store.iter().filter(|(c, _)| *c == content).count();
            if copies > 1 {
                return Err(format!(
                    "content {content} stored {copies} times: a racing publish was \
                     missed and dedup broke"
                ));
            }
            if copies == 0 {
                return Err(format!("content {content} never reached the store"));
            }
        }
        for &(content, id) in &s.hooks {
            if !s.store.iter().any(|&(c, i)| c == content && i == id) {
                return Err(format!("hook for content {content} targets missing chunk {id}"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Intent-record overwrite: write → fsync → rename → retire
// ---------------------------------------------------------------------

/// Model of the durable-overwrite discipline shared by the store backend
/// and the daemon's session intent records: write the intent (wip)
/// record, write the new manifest to a tmp sibling, fsync the tmp,
/// rename it over the target, and only then retire the intent.
///
/// Every reachable state is a crash point: the invariant computes the
/// possible post-crash disk images (a rename of an *unsynced* tmp may
/// surface a torn target after power loss) and runs recovery over each —
/// recovery must always yield either the old or the new manifest, never
/// a torn one, and must be able to clean up every leftover (a tmp with
/// no intent record is orphaned garbage nothing will ever collect).
///
/// A fault-injector thread may arm a rename failure at any point before
/// the rename executes, forcing the writer down the error exit path; the
/// quiescent check then requires the intent record retired and the tmp
/// removed on *both* exit paths — the PR 8 leaked-lease bug, where the
/// persist-failure path skipped the cleanup, is the seeded
/// `intent-retire` mutant.
pub struct IntentModel {
    /// The shipped protocol fsyncs the tmp before renaming it; the
    /// mutant renames an unsynced tmp, whose content can be torn by a
    /// crash after the rename.
    fsync_before_rename: bool,
    /// The shipped error path retires the intent record; the mutant
    /// leaks it (and the session lease it represents).
    retire_on_error: bool,
    /// The shipped protocol retires the intent only after the rename is
    /// durable; the mutant retires first, leaving a window where a crash
    /// orphans the tmp file.
    retire_after_rename: bool,
}

impl IntentModel {
    /// The shipped protocol: fsync, rename, then retire on every path.
    pub fn shipped() -> IntentModel {
        IntentModel { fsync_before_rename: true, retire_on_error: true, retire_after_rename: true }
    }

    /// The seeded bug: the error exit path returns without retiring the
    /// intent record — the historical daemon leak where a failed persist
    /// left the stream lease held and GC pinned. The checker must catch
    /// the leaked record at quiescence.
    pub fn mutant_intent_retire() -> IntentModel {
        IntentModel { retire_on_error: false, ..IntentModel::shipped() }
    }

    /// Test-only mutant: rename without fsync — a crash right after the
    /// rename can surface a torn manifest, which recovery cannot repair.
    pub fn mutant_skip_fsync() -> IntentModel {
        IntentModel { fsync_before_rename: false, ..IntentModel::shipped() }
    }

    /// Test-only mutant: retire the intent before the rename — a crash
    /// between the two leaves a tmp file no recovery pass will ever
    /// clean up.
    pub fn mutant_early_retire() -> IntentModel {
        IntentModel { retire_after_rename: false, ..IntentModel::shipped() }
    }
}

/// Writer position. The happy path runs top to bottom; an armed rename
/// failure diverts `W_RENAME` to the error path (`E_CLEAN_TMP` →
/// `E_RETIRE`).
const I_WRITE_WIP: u8 = 0;
const I_WRITE_TMP: u8 = 1;
const I_FSYNC_TMP: u8 = 2;
const I_RENAME: u8 = 3;
const I_RETIRE: u8 = 4;
const I_DONE: u8 = 5;
const I_E_CLEAN_TMP: u8 = 6;
const I_E_RETIRE: u8 = 7;

/// Tmp-file state on disk.
const TMP_ABSENT: u8 = 0;
const TMP_UNSYNCED: u8 = 1;
const TMP_SYNCED: u8 = 2;

/// Intent-protocol state: the writer's position plus the disk image.
#[derive(Debug, Clone)]
pub struct IntentState {
    w_pc: u8,
    /// True once the target holds the *new* manifest.
    manifest_new: bool,
    /// The rename happened while the tmp was unsynced: a crash from here
    /// on can surface a torn target.
    renamed_unsynced: bool,
    tmp: u8,
    /// The intent (wip) record exists.
    wip: bool,
    /// The injector armed a rename failure.
    fail_rename: bool,
    /// Injector position (one shot).
    i_pc: u8,
    /// The writer exited via the error path.
    failed: bool,
}

impl Model for IntentModel {
    type State = IntentState;

    fn init(&self) -> IntentState {
        IntentState {
            w_pc: I_WRITE_WIP,
            manifest_new: false,
            renamed_unsynced: false,
            tmp: TMP_ABSENT,
            wip: false,
            fail_rename: false,
            i_pc: 0,
            failed: false,
        }
    }

    fn threads(&self) -> usize {
        2
    }

    fn enabled(&self, s: &IntentState, tid: usize) -> bool {
        if tid == 0 {
            s.w_pc != I_DONE
        } else {
            // The injector can arm the failure any time before the
            // rename executes; afterwards it has missed its window.
            s.i_pc == 0 && s.w_pc <= I_RENAME
        }
    }

    fn step(&self, s: &mut IntentState, tid: usize) {
        if tid == 1 {
            s.fail_rename = true;
            s.i_pc = 1;
            return;
        }
        match s.w_pc {
            I_WRITE_WIP => {
                s.wip = true;
                s.w_pc = I_WRITE_TMP;
            }
            I_WRITE_TMP => {
                s.tmp = TMP_UNSYNCED;
                s.w_pc = if self.fsync_before_rename { I_FSYNC_TMP } else { self.pc_after_fsync() };
            }
            I_FSYNC_TMP => {
                s.tmp = TMP_SYNCED;
                s.w_pc = self.pc_after_fsync();
            }
            I_RENAME => {
                if s.fail_rename {
                    s.w_pc = I_E_CLEAN_TMP;
                } else {
                    if s.tmp == TMP_UNSYNCED {
                        s.renamed_unsynced = true;
                    }
                    s.manifest_new = true;
                    s.tmp = TMP_ABSENT;
                    s.w_pc = if self.retire_after_rename { I_RETIRE } else { I_DONE };
                }
            }
            I_RETIRE => {
                s.wip = false;
                s.w_pc = if self.retire_after_rename { I_DONE } else { I_RENAME };
            }
            I_E_CLEAN_TMP => {
                s.tmp = TMP_ABSENT;
                s.failed = true;
                s.w_pc = if self.retire_on_error { I_E_RETIRE } else { I_DONE };
            }
            I_E_RETIRE => {
                s.wip = false;
                s.w_pc = I_DONE;
            }
            _ => {}
        }
    }

    fn invariant(&self, s: &IntentState) -> Result<(), String> {
        // Crash here: enumerate the possible disk images and recover.
        // Image 1 — everything as tracked. Image 2 — if the rename moved
        // an unsynced tmp, the target may additionally be torn.
        let torn_possible = s.renamed_unsynced;
        if torn_possible {
            // Recovery reads the target: with or without the intent
            // record it has no older copy to fall back to — the rename
            // destroyed the old manifest and the new bytes never hit
            // stable storage.
            return Err("crash point where the manifest can be torn: the tmp was renamed over \
                 the target without an fsync, so recovery can yield neither the old nor \
                 the new manifest"
                .into());
        }
        if s.tmp != TMP_ABSENT && !s.wip {
            return Err("crash point with a tmp file on disk and no intent record: recovery \
                 only scans intents, so the tmp is orphaned forever"
                .into());
        }
        Ok(())
    }

    fn quiescent(&self, s: &IntentState) -> Result<(), String> {
        if s.wip {
            return Err("intent (wip) record leaked: a commit exit path failed to retire it, \
                 leaving the stream lease held and GC pinned"
                .into());
        }
        if s.tmp != TMP_ABSENT {
            return Err("tmp file leaked past commit completion".into());
        }
        if s.failed && s.manifest_new {
            return Err("failed overwrite left the new manifest visible".into());
        }
        if !s.failed && !s.manifest_new {
            return Err("successful overwrite never made the new manifest visible".into());
        }
        Ok(())
    }
}

impl IntentModel {
    /// Where the writer goes once the tmp is as durable as this variant
    /// makes it: straight to the rename, unless the early-retire mutant
    /// retires the intent first.
    fn pc_after_fsync(&self) -> u8 {
        if self.retire_after_rename {
            I_RENAME
        } else {
            I_RETIRE
        }
    }
}

// ---------------------------------------------------------------------
// Compaction racing protected GC
// ---------------------------------------------------------------------

/// Model of container compaction (`mhd_core::compact`) interleaved with
/// watermark-protected mark-sweep GC (`mhd_core::gc::collect_protected`).
///
/// The store starts with a garbage chunk (id 0) and a live container
/// (id 1) referenced by one recipe. The compactor registers the
/// allocation watermark (the same `SessionRegistry` discipline write
/// sessions use), writes the replacement container under a **fresh
/// monotonic id**, retargets the recipe, deletes the old container, and
/// deregisters. GC snapshots its sweep cutoff — `min(next id, registered
/// watermarks)` — and the recipe-referenced live set at mark time, then
/// sweeps one chunk per step.
///
/// Invariants at every state: the recipe's target is on disk (no live
/// chunk is ever collected), and no id ever returns to disk after being
/// deleted (compaction never resurrects a swept id — the monotonic
/// allocator is what makes the sweep safe). Quiescence requires the
/// garbage reclaimed, the old container gone, and the recipe on the new
/// container — so neither a GC that never sweeps nor a compactor that
/// never finishes can pass.
pub struct CompactGcModel {
    /// The shipped sweep honours registered watermarks; the mutant
    /// ignores the compactor's registration and sweeps the replacement
    /// container out from under it before the retarget.
    honor_watermarks: bool,
    /// The shipped compactor allocates a fresh monotonic id; the mutant
    /// reuses the lowest free slot, resurrecting swept ids.
    fresh_ids: bool,
}

impl CompactGcModel {
    /// The shipped protocol: watermark-protected sweep, monotonic ids.
    pub fn shipped() -> CompactGcModel {
        CompactGcModel { honor_watermarks: true, fresh_ids: true }
    }

    /// The seeded bug: the sweep cutoff ignores the compactor's
    /// registration, so a mark taken after the new container is written
    /// but before the recipe retarget sweeps it as unreferenced garbage.
    /// The checker must catch the dangling recipe.
    pub fn mutant_compact_sweep() -> CompactGcModel {
        CompactGcModel { honor_watermarks: false, fresh_ids: true }
    }

    /// Test-only mutant: the compactor's allocator reuses freed slots,
    /// writing the replacement container over an id GC already swept.
    pub fn mutant_id_reuse() -> CompactGcModel {
        CompactGcModel { fresh_ids: false, ..CompactGcModel::shipped() }
    }
}

/// Compactor position.
const C_REGISTER: u8 = 0;
const C_WRITE_NEW: u8 = 1;
const C_RETARGET: u8 = 2;
const C_DELETE_OLD: u8 = 3;
const C_DEREGISTER: u8 = 4;
const C_DONE: u8 = 5;

/// Chunk-slot count: garbage (0), old container (1), replacement (2).
const CG_SLOTS: usize = 3;

/// Compaction-vs-GC state.
#[derive(Debug, Clone)]
pub struct CompactGcState {
    c_pc: u8,
    /// The compactor's registered watermark, while registered.
    watermark: Option<u8>,
    /// Id the compactor allocated for the replacement container.
    new_id: Option<u8>,
    /// Chunk id the single recipe references.
    recipe_target: u8,
    disk: [bool; CG_SLOTS],
    /// Ids ever deleted (by GC sweep or compaction's old-container
    /// delete); writing one again is a resurrection.
    retired: [bool; CG_SLOTS],
    next_id: u8,
    gc_phase: u8,
    cutoff: u8,
    live: [bool; CG_SLOTS],
    sweep_idx: usize,
}

impl Model for CompactGcModel {
    type State = CompactGcState;

    fn init(&self) -> CompactGcState {
        let mut disk = [false; CG_SLOTS];
        disk[0] = true; // pre-existing unreferenced garbage
        disk[1] = true; // the fragmented container the recipe lives on
        CompactGcState {
            c_pc: C_REGISTER,
            watermark: None,
            new_id: None,
            recipe_target: 1,
            disk,
            retired: [false; CG_SLOTS],
            next_id: 2,
            gc_phase: GC_IDLE,
            cutoff: 0,
            live: [false; CG_SLOTS],
            sweep_idx: 0,
        }
    }

    fn threads(&self) -> usize {
        2
    }

    fn enabled(&self, s: &CompactGcState, tid: usize) -> bool {
        if tid == 0 {
            s.gc_phase < GC_DONE
        } else {
            s.c_pc < C_DONE
        }
    }

    fn step(&self, s: &mut CompactGcState, tid: usize) {
        if tid == 0 {
            if s.gc_phase == GC_IDLE {
                s.cutoff = s.next_id;
                if self.honor_watermarks {
                    if let Some(wm) = s.watermark {
                        s.cutoff = s.cutoff.min(wm);
                    }
                }
                s.live = [false; CG_SLOTS];
                s.live[s.recipe_target as usize] = true;
                s.sweep_idx = 0;
                s.gc_phase = GC_MARKED;
            } else {
                let i = s.sweep_idx;
                if s.disk[i] && !s.live[i] && (i as u8) < s.cutoff {
                    s.disk[i] = false;
                    s.retired[i] = true;
                }
                s.sweep_idx += 1;
                if s.sweep_idx == CG_SLOTS {
                    s.gc_phase = GC_DONE;
                }
            }
            return;
        }
        match s.c_pc {
            C_REGISTER => {
                s.watermark = Some(s.next_id);
                s.c_pc = C_WRITE_NEW;
            }
            C_WRITE_NEW => {
                let id = if self.fresh_ids {
                    let id = s.next_id;
                    s.next_id += 1;
                    id
                } else {
                    // Lowest-free-slot allocator: the resurrection bug.
                    (0..CG_SLOTS as u8).find(|&i| !s.disk[i as usize]).unwrap_or(s.next_id)
                };
                s.new_id = Some(id);
                s.disk[id as usize] = true;
                s.c_pc = C_RETARGET;
            }
            C_RETARGET => {
                if let Some(id) = s.new_id {
                    s.recipe_target = id;
                }
                s.c_pc = C_DELETE_OLD;
            }
            C_DELETE_OLD => {
                s.disk[1] = false;
                s.retired[1] = true;
                s.c_pc = C_DEREGISTER;
            }
            C_DEREGISTER => {
                s.watermark = None;
                s.c_pc = C_DONE;
            }
            _ => {}
        }
    }

    fn invariant(&self, s: &CompactGcState) -> Result<(), String> {
        if !s.disk[s.recipe_target as usize] {
            return Err(format!(
                "the recipe references chunk {}, which is not on disk — GC swept a \
                 live chunk (cutoff {}, compactor watermark {:?})",
                s.recipe_target, s.cutoff, s.watermark
            ));
        }
        for i in 0..CG_SLOTS {
            if s.disk[i] && s.retired[i] {
                return Err(format!(
                    "chunk id {i} is back on disk after being swept: compaction \
                     resurrected a retired id"
                ));
            }
        }
        Ok(())
    }

    fn quiescent(&self, s: &CompactGcState) -> Result<(), String> {
        if s.disk[0] {
            return Err("pre-existing garbage chunk 0 was never reclaimed".into());
        }
        if s.disk[1] {
            return Err("compaction never deleted the old container".into());
        }
        if s.c_pc != C_DONE {
            return Err("compaction never completed".into());
        }
        if s.watermark.is_some() {
            return Err("compactor never deregistered its watermark".into());
        }
        match s.new_id {
            Some(id) if s.recipe_target == id && s.disk[id as usize] => Ok(()),
            _ => Err(format!(
                "recipe does not sit on the live replacement container \
                 (target {}, new id {:?})",
                s.recipe_target, s.new_id
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mck::check;

    const BUDGET: usize = 2_000_000;

    #[test]
    fn shipped_flush_order_is_crash_consistent() {
        let result = check(&FlushModel::shipped(), BUDGET);
        assert!(result.passed(), "violation: {:?}", result.violation);
        // The workload is tiny by design; ~2 dozen distinct states is the
        // true exhaustive count (queue claims are popped deterministically,
        // so symmetric worker schedules collapse in the dedup set).
        assert!(result.states >= 20, "too few states: {}", result.states);
    }

    #[test]
    fn reversed_flush_order_is_caught() {
        let result = check(&FlushModel::mutant_flush_order(), BUDGET);
        let v = result.violation.expect("reversed order must violate crash consistency");
        assert!(v.message.contains("crash point"), "{}", v.message);
    }

    #[test]
    fn any_flush_order_violating_a_ref_edge_is_caught() {
        // Not just the full reversal: every permutation that breaks an
        // edge must fail, and every permutation preserving all edges must
        // pass (there are exactly three: the shipped one, and the two
        // where FileManifest flushes earlier among the later kinds).
        let kinds = FileKind::FLUSH_ORDER;
        let mut pass = 0usize;
        let mut fail = 0usize;
        for p in permutations(&kinds) {
            let model = FlushModel { order: p.clone(), workers: 2 };
            let edges_ok = crate::passes::REF_EDGES.iter().all(|(referrer, referee)| {
                let pos = |n: &str| p.iter().position(|k| format!("{k:?}") == n);
                match (pos(referrer), pos(referee)) {
                    (Some(a), Some(b)) => b < a,
                    _ => false,
                }
            });
            let result = check(&model, BUDGET);
            assert_eq!(
                result.passed(),
                edges_ok,
                "order {p:?}: edges_ok={edges_ok} but checker said {:?}",
                result.violation
            );
            if edges_ok {
                pass += 1;
            } else {
                fail += 1;
            }
        }
        assert_eq!(pass, 3);
        assert_eq!(fail, 21);
    }

    fn permutations(kinds: &[FileKind; 4]) -> Vec<Vec<FileKind>> {
        let mut out = Vec::new();
        let mut items = kinds.to_vec();
        permute(&mut items, 0, &mut out);
        out
    }

    fn permute(items: &mut Vec<FileKind>, k: usize, out: &mut Vec<Vec<FileKind>>) {
        if k == items.len() {
            out.push(items.clone());
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, out);
            items.swap(k, i);
        }
    }

    #[test]
    fn shipped_ring_prune_loses_nothing() {
        let result = check(&RingModel::shipped(), BUDGET);
        assert!(result.passed(), "violation: {:?}", result.violation);
        assert!(result.states > 100, "too few states: {}", result.states);
    }

    #[test]
    fn shipped_gc_protection_is_safe_and_reclaims_garbage() {
        let result = check(&GcProtectModel::shipped(), BUDGET);
        assert!(result.passed(), "violation: {:?}", result.violation);
        assert!(result.states > 100, "too few states: {}", result.states);
    }

    #[test]
    fn watermark_ignoring_gc_is_caught() {
        let result = check(&GcProtectModel::mutant_gc_protect(), BUDGET);
        let v = result.violation.expect("ignoring session watermarks must sweep a live chunk");
        assert!(v.message.contains("swept"), "{}", v.message);
        // The repro schedule replays deterministically.
        let model = GcProtectModel::mutant_gc_protect();
        let mut s = model.init();
        for &tid in &v.schedule {
            model.step(&mut s, tid);
        }
        assert_eq!(format!("{s:?}"), v.state);
    }

    #[test]
    fn publish_before_splice_is_caught() {
        let result = check(&GcProtectModel::mutant_splice_order(), BUDGET);
        let v = result
            .violation
            .expect("publishing a recipe before splicing its chunk must violate the invariant");
        assert!(v.message.contains("spliced"), "{}", v.message);
        // The repro schedule replays deterministically.
        let model = GcProtectModel::mutant_splice_order();
        let mut s = model.init();
        for &tid in &v.schedule {
            model.step(&mut s, tid);
        }
        assert_eq!(format!("{s:?}"), v.state);
    }

    #[test]
    fn gc_that_protects_everything_fails_quiescence() {
        // Guard the guard: a cutoff of zero (sweep nothing, ever) must be
        // rejected too — via the unreclaimed-garbage quiescence check —
        // so the shipped model cannot rot into vacuous safety.
        struct NeverSweep;
        impl Model for NeverSweep {
            type State = GcProtectState;
            fn init(&self) -> GcProtectState {
                GcProtectModel::shipped().init()
            }
            fn threads(&self) -> usize {
                GcProtectModel::shipped().threads()
            }
            fn enabled(&self, s: &GcProtectState, tid: usize) -> bool {
                GcProtectModel::shipped().enabled(s, tid)
            }
            fn step(&self, s: &mut GcProtectState, tid: usize) {
                GcProtectModel::shipped().step(s, tid);
                s.cutoff = 0; // paranoia mutant: protect every id
            }
            fn invariant(&self, s: &GcProtectState) -> Result<(), String> {
                GcProtectModel::shipped().invariant(s)
            }
            fn quiescent(&self, s: &GcProtectState) -> Result<(), String> {
                GcProtectModel::shipped().quiescent(s)
            }
        }
        let result = check(&NeverSweep, BUDGET);
        let v = result.violation.expect("a GC that never sweeps must fail quiescence");
        assert!(v.message.contains("never reclaimed"), "{}", v.message);
    }

    #[test]
    fn eager_ring_prune_is_caught() {
        let result = check(&RingModel::mutant_ring_prune(), BUDGET);
        let v = result.violation.expect("eager prune must lose events in some schedule");
        assert!(v.message.contains("pruned") || v.message.contains("event loss"), "{}", v.message);
        // The repro schedule replays deterministically.
        let model = RingModel::mutant_ring_prune();
        let mut s = model.init();
        for &tid in &v.schedule {
            model.step(&mut s, tid);
        }
        assert_eq!(format!("{s:?}"), v.state);
    }

    /// Replays a violation's schedule from `init` and asserts it lands on
    /// the reported state — the repro contract every mutant test relies on.
    fn assert_schedule_replays<M: Model>(model: &M, v: &crate::mck::Violation) {
        let mut s = model.init();
        for &tid in &v.schedule {
            assert!(model.enabled(&s, tid), "schedule took a disabled step");
            model.step(&mut s, tid);
        }
        assert_eq!(format!("{s:?}"), v.state);
    }

    // --- two-phase publish ---

    #[test]
    fn model_constants_track_the_shipped_daemon() {
        // The model scales the id floor down to fit its u8 state, but the
        // protocol facts it abstracts must hold for the shipped values:
        // the daemon's floor is exactly the documented `1 << 48` (the L8
        // pass greps for this literal), the model's scaled floor sits
        // below it, and the model's retry budget does not exceed the
        // daemon's (so "exhausts retries" in the model implies it in the
        // real protocol too).
        assert_eq!(mhd_daemon::LOCAL_ID_BASE, 1 << 48);
        assert!(u64::from(MODEL_LOCAL_BASE) < mhd_daemon::LOCAL_ID_BASE);
        assert!(u32::from(MODEL_MAX_RETRIES) <= mhd_daemon::MAX_COMMIT_RETRIES);
    }

    #[test]
    fn shipped_publish_protocol_is_exact_and_race_free() {
        let result = check(&PublishModel::shipped(), BUDGET);
        assert!(result.passed(), "violation: {:?}", result.violation);
        // The workload must actually exercise the conflict path: with two
        // sessions both ingesting CONTENT_A, some schedule forces a
        // retry, so the state space is well beyond the two straight-line
        // interleavings (~14 states) of a conflict-free pair.
        assert!(result.states > 25, "too few states: {}", result.states);
    }

    #[test]
    fn publish_without_epoch_validation_double_stores() {
        let result = check(&PublishModel::mutant_publish_epoch(), BUDGET);
        let v = result.violation.expect("skipping the epoch-log check must break dedup");
        assert!(v.message.contains("stored 2 times"), "{}", v.message);
        assert_schedule_replays(&PublishModel::mutant_publish_epoch(), &v);
    }

    #[test]
    fn publish_without_remap_leaks_staging_ids() {
        let result = check(&PublishModel::mutant_no_remap(), BUDGET);
        let v = result.violation.expect("an unmapped splice must leak staging ids");
        assert!(v.message.contains("staging id"), "{}", v.message);
        assert_schedule_replays(&PublishModel::mutant_no_remap(), &v);
    }

    #[test]
    fn publish_with_stuck_reservation_overlaps_ranges() {
        let result = check(&PublishModel::mutant_overlapping_reserve(), BUDGET);
        let v = result.violation.expect("a non-advancing allocator must overlap id ranges");
        assert!(v.message.contains("overlap"), "{}", v.message);
        assert_schedule_replays(&PublishModel::mutant_overlapping_reserve(), &v);
    }

    #[test]
    fn publish_conflict_rule_matches_the_shipped_predicate() {
        // Deterministic single-path replay of the race the epoch log
        // exists for: session 1 snapshots, session 0 publishes A, then
        // session 1 runs its (stale) pipeline and must detect the
        // conflict, retry, and dedup A against session 0's copy.
        let model = PublishModel::shipped();
        let mut s = model.init();
        model.step(&mut s, 1); // session 1: snapshot epoch 0
        model.step(&mut s, 0); // session 0: snapshot
        model.step(&mut s, 0); // session 0: pipeline (misses A)
        model.step(&mut s, 0); // session 0: publish A at epoch 1
        model.step(&mut s, 1); // session 1: pipeline — probe ran *after*
                               // the publish, so A resolves as a dup
        model.step(&mut s, 1); // session 1: publish (no conflict: missed={B})
        assert_eq!(s.sessions[1].retries, 0, "a dup-resolved probe needs no retry");
        assert!(model.invariant(&s).is_ok());
        assert!(model.quiescent(&s).is_ok(), "{:?}", model.quiescent(&s));
        assert_eq!(s.store.len(), 2, "exactly A and B stored once each");

        // Now the stale-probe order: session 1's pipeline runs *before*
        // session 0 publishes — the epoch log is the only thing standing
        // between this schedule and a double store.
        let mut s = model.init();
        model.step(&mut s, 1); // session 1: snapshot epoch 0
        model.step(&mut s, 1); // session 1: pipeline (misses A and B)
        model.step(&mut s, 0); // session 0: snapshot
        model.step(&mut s, 0); // session 0: pipeline
        model.step(&mut s, 0); // session 0: publish A at epoch 1
        model.step(&mut s, 1); // session 1: publish → conflict → retry
        assert_eq!(s.sessions[1].retries, 1, "stale missed set must trigger a retry");
        assert_eq!(s.sessions[1].pc, P_SNAPSHOT);
    }

    // --- intent-record overwrite ---

    #[test]
    fn shipped_intent_protocol_is_crash_consistent() {
        let result = check(&IntentModel::shipped(), BUDGET);
        assert!(result.passed(), "violation: {:?}", result.violation);
        // Both exit paths (clean rename + injected failure) are explored:
        // strictly more states than the 8-step happy path alone.
        assert!(result.states > 10, "too few states: {}", result.states);
    }

    #[test]
    fn intent_leak_on_error_path_is_caught() {
        let result = check(&IntentModel::mutant_intent_retire(), BUDGET);
        let v = result.violation.expect("a non-retiring error path must leak the wip record");
        assert!(v.message.contains("leaked"), "{}", v.message);
        assert_schedule_replays(&IntentModel::mutant_intent_retire(), &v);
    }

    #[test]
    fn rename_without_fsync_can_tear_the_manifest() {
        let result = check(&IntentModel::mutant_skip_fsync(), BUDGET);
        let v = result.violation.expect("renaming an unsynced tmp must admit a torn manifest");
        assert!(v.message.contains("torn"), "{}", v.message);
        assert_schedule_replays(&IntentModel::mutant_skip_fsync(), &v);
    }

    #[test]
    fn retiring_the_intent_before_rename_orphans_the_tmp() {
        let result = check(&IntentModel::mutant_early_retire(), BUDGET);
        let v = result.violation.expect("retiring before the rename must orphan the tmp file");
        assert!(v.message.contains("orphaned"), "{}", v.message);
        assert_schedule_replays(&IntentModel::mutant_early_retire(), &v);
    }

    // --- compaction vs protected GC ---

    #[test]
    fn shipped_compaction_survives_concurrent_gc() {
        let result = check(&CompactGcModel::shipped(), BUDGET);
        assert!(result.passed(), "violation: {:?}", result.violation);
        assert!(result.states > 35, "too few states: {}", result.states);
    }

    #[test]
    fn compaction_registration_is_load_bearing() {
        let result = check(&CompactGcModel::mutant_compact_sweep(), BUDGET);
        let v = result
            .violation
            .expect("a sweep ignoring the compactor's watermark must collect a live chunk");
        assert!(v.message.contains("swept a live chunk"), "{}", v.message);
        assert_schedule_replays(&CompactGcModel::mutant_compact_sweep(), &v);
    }

    #[test]
    fn compaction_id_reuse_resurrects_swept_ids() {
        let result = check(&CompactGcModel::mutant_id_reuse(), BUDGET);
        let v = result.violation.expect("a slot-reusing allocator must resurrect a retired id");
        assert!(v.message.contains("resurrected"), "{}", v.message);
        assert_schedule_replays(&CompactGcModel::mutant_id_reuse(), &v);
    }
}
