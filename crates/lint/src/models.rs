//! Concrete [`Model`]s of the workspace's two real concurrent protocols.
//!
//! * [`FlushModel`] — the `BatchedDirBackend` flush-barrier protocol: a
//!   coordinator drains the pending overlay kind-by-kind in
//!   `FileKind::FLUSH_ORDER` (taken from the *real* constant, so the model
//!   checks the shipped order, not a transcription), with a barrier
//!   between kinds; workers claim jobs and write them to disk. The
//!   invariant at every state — i.e. every crash point — is that nothing
//!   on disk references anything not on disk.
//! * [`RingModel`] — the trace-ring registry: recorder threads register a
//!   per-thread ring, push events, and exit; a drainer collects events
//!   and prunes dead rings. The checked property is that no drained-event
//!   is ever lost — the exact bug class of pruning a dead-but-nonempty
//!   ring (which the workspace's `prune_dead_threads` once had).
//! * [`GcProtectModel`] — the daemon's watermark-protected mark-sweep
//!   (`mhd-daemon`'s `SessionRegistry` + `mhd_core::gc::collect_protected`)
//!   racing two-phase commits: writer sessions register the allocation
//!   watermark at `BEGIN`, run their dedup pipeline outside the lock,
//!   then reserve an id, splice the chunk, and publish the recipe; the
//!   collector's sweep cutoff is the minimum over its own watermark and
//!   every registered one. The invariant is that no recipe ever
//!   references a chunk missing from disk — whether because GC swept it
//!   or because the publish ran before the splice — and quiescence
//!   additionally requires pre-existing garbage to actually be reclaimed
//!   (so "protect everything" cannot pass either).
//!
//! Each model has a `mutant` constructor seeding the historical bug, used
//! as a negative test: CI runs the mutants and *requires* the checker to
//! catch them, so the checker itself cannot rot into a rubber stamp.

use mhd_store::FileKind;

use crate::mck::Model;

// ---------------------------------------------------------------------
// Flush-barrier protocol
// ---------------------------------------------------------------------

/// One pending object in the modelled flush workload.
#[derive(Debug, Clone, Copy)]
struct Obj {
    name: &'static str,
    kind: FileKind,
    /// Indices into [`WORKLOAD`] this object references on disk.
    refs: &'static [usize],
}

/// A minimal workload exercising every reference edge the store has:
/// a Manifest referencing two DiskChunks, a Hook referencing the
/// Manifest, and a FileManifest referencing a DiskChunk.
const WORKLOAD: &[Obj] = &[
    Obj { name: "chunk-a", kind: FileKind::DiskChunk, refs: &[] },
    Obj { name: "chunk-b", kind: FileKind::DiskChunk, refs: &[] },
    Obj { name: "manifest", kind: FileKind::Manifest, refs: &[0, 1] },
    Obj { name: "hook", kind: FileKind::Hook, refs: &[2] },
    Obj { name: "recipe", kind: FileKind::FileManifest, refs: &[0] },
];

/// Model of the batched backend's kind-ordered, barriered flush.
pub struct FlushModel {
    order: Vec<FileKind>,
    workers: usize,
}

impl FlushModel {
    /// The shipped protocol: flush in `FileKind::FLUSH_ORDER` with two
    /// workers racing within each kind.
    pub fn shipped() -> FlushModel {
        FlushModel { order: FileKind::FLUSH_ORDER.to_vec(), workers: 2 }
    }

    /// The seeded bug: the flush order reversed, so referrers hit disk
    /// before their referees. The checker must reject this.
    pub fn mutant_flush_order() -> FlushModel {
        let mut order = FileKind::FLUSH_ORDER.to_vec();
        order.reverse();
        FlushModel { order, workers: 2 }
    }
}

/// Flush-protocol state. `claimed` holds the job each worker has taken
/// off the queue but not yet written — a crash there loses the write, a
/// reference check there sees the claim's referee status as-is.
#[derive(Debug, Clone)]
pub struct FlushState {
    kind_idx: usize,
    queue: Vec<usize>,
    claimed: Vec<Option<usize>>,
    disk: [bool; 5],
    done: bool,
}

fn jobs_of(kind: FileKind) -> Vec<usize> {
    (0..WORKLOAD.len()).filter(|&i| WORKLOAD[i].kind == kind).collect()
}

impl Model for FlushModel {
    type State = FlushState;

    fn init(&self) -> FlushState {
        FlushState {
            kind_idx: 0,
            queue: jobs_of(self.order[0]),
            claimed: vec![None; self.workers],
            disk: [false; 5],
            done: false,
        }
    }

    fn threads(&self) -> usize {
        1 + self.workers
    }

    fn enabled(&self, s: &FlushState, tid: usize) -> bool {
        if s.done {
            return false;
        }
        if tid == 0 {
            // The coordinator advances to the next kind only at the
            // barrier: queue drained and every worker's write retired.
            s.queue.is_empty() && s.claimed.iter().all(Option::is_none)
        } else {
            s.claimed[tid - 1].is_some() || !s.queue.is_empty()
        }
    }

    fn step(&self, s: &mut FlushState, tid: usize) {
        if tid == 0 {
            s.kind_idx += 1;
            if s.kind_idx == self.order.len() {
                s.done = true;
            } else {
                s.queue = jobs_of(self.order[s.kind_idx]);
            }
        } else if let Some(obj) = s.claimed[tid - 1].take() {
            s.disk[obj] = true;
        } else {
            s.claimed[tid - 1] = s.queue.pop();
        }
    }

    fn invariant(&self, s: &FlushState) -> Result<(), String> {
        // Every state is a crash point: if the process dies here, what is
        // on disk must be self-contained.
        for (i, obj) in WORKLOAD.iter().enumerate() {
            if !s.disk[i] {
                continue;
            }
            for &r in obj.refs {
                if !s.disk[r] {
                    return Err(format!(
                        "crash point with {} on disk but its referee {} missing \
                         (flush order {:?})",
                        obj.name, WORKLOAD[r].name, self.order
                    ));
                }
            }
        }
        Ok(())
    }

    fn quiescent(&self, s: &FlushState) -> Result<(), String> {
        if !s.done {
            return Err("deadlock: flush never completed".into());
        }
        if let Some(i) = (0..WORKLOAD.len()).find(|&i| !s.disk[i]) {
            return Err(format!("lost write: {} never reached disk", WORKLOAD[i].name));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Trace-ring registry pruning
// ---------------------------------------------------------------------

/// Model of the per-thread trace-ring registry with a draining collector.
pub struct RingModel {
    recorders: usize,
    /// The shipped prune rule keeps dead rings until drained empty; the
    /// mutant prunes any dead ring, stranding undrained events.
    prune_requires_empty: bool,
}

impl RingModel {
    /// The shipped protocol: prune only rings that are both dead and
    /// drained empty.
    pub fn shipped() -> RingModel {
        RingModel { recorders: 2, prune_requires_empty: true }
    }

    /// The seeded bug: prune every dead ring, even with undrained events
    /// still queued — the historical race where a recorder pushes between
    /// the drainer's collection and its prune. The checker must catch it.
    pub fn mutant_ring_prune() -> RingModel {
        RingModel { recorders: 2, prune_requires_empty: false }
    }
}

/// Recorder lifecycle position: start → registered → pushed → exited.
const REC_START: u8 = 0;
const REC_REGISTERED: u8 = 1;
const REC_EXITED: u8 = 3;

/// Drainer position: two passes over the rings (one racing the
/// recorders, one final pass after all recorders have exited — matching
/// `trace_drain` being called after worker threads are joined), each ring
/// visited as drain-then-prune.
#[derive(Debug, Clone)]
pub struct RingState {
    rec_pc: Vec<u8>,
    in_registry: Vec<bool>,
    ring_events: Vec<u8>,
    pushed: u8,
    drained: u8,
    d_pass: u8,
    d_idx: usize,
    d_phase: u8,
}

impl Model for RingModel {
    type State = RingState;

    fn init(&self) -> RingState {
        RingState {
            rec_pc: vec![REC_START; self.recorders],
            in_registry: vec![false; self.recorders],
            ring_events: vec![0; self.recorders],
            pushed: 0,
            drained: 0,
            d_pass: 0,
            d_idx: 0,
            d_phase: 0,
        }
    }

    fn threads(&self) -> usize {
        1 + self.recorders
    }

    fn enabled(&self, s: &RingState, tid: usize) -> bool {
        if tid == 0 {
            match s.d_pass {
                0 => true,
                // The final drain runs after every recorder has exited.
                1 => s.rec_pc.iter().all(|&pc| pc == REC_EXITED),
                _ => false,
            }
        } else {
            s.rec_pc[tid - 1] < REC_EXITED
        }
    }

    fn step(&self, s: &mut RingState, tid: usize) {
        if tid == 0 {
            let i = s.d_idx;
            if s.in_registry[i] && s.d_phase == 0 {
                // Collect this ring's events.
                s.drained += s.ring_events[i];
                s.ring_events[i] = 0;
                s.d_phase = 1;
                return;
            }
            if s.in_registry[i] && s.d_phase == 1 {
                let dead = s.rec_pc[i] == REC_EXITED;
                if dead && (s.ring_events[i] == 0 || !self.prune_requires_empty) {
                    s.in_registry[i] = false;
                }
            }
            s.d_phase = 0;
            s.d_idx += 1;
            if s.d_idx == self.recorders {
                s.d_idx = 0;
                s.d_pass += 1;
            }
        } else {
            let r = tid - 1;
            match s.rec_pc[r] {
                REC_START => s.in_registry[r] = true,
                REC_REGISTERED => {
                    // The push lands in the ring whether or not the
                    // registry still lists it — the recorder holds its
                    // own handle; a pruned ring's events are unreachable.
                    s.ring_events[r] += 1;
                    s.pushed += 1;
                }
                _ => {}
            }
            s.rec_pc[r] += 1;
        }
    }

    fn invariant(&self, s: &RingState) -> Result<(), String> {
        for (i, &listed) in s.in_registry.iter().enumerate() {
            if !listed && s.ring_events[i] > 0 {
                return Err(format!(
                    "ring {i} pruned from the registry with {} undrained event(s): \
                     they can never be collected",
                    s.ring_events[i]
                ));
            }
        }
        Ok(())
    }

    fn quiescent(&self, s: &RingState) -> Result<(), String> {
        if s.drained != s.pushed {
            return Err(format!("event loss: {} pushed but only {} drained", s.pushed, s.drained));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Watermark-protected garbage collection (daemon sessions vs GC)
// ---------------------------------------------------------------------

/// Model of concurrent two-phase write sessions racing one protected
/// mark-sweep collection over a shared store with monotonic chunk ids.
///
/// Each writer is one daemon session running the shipped two-phase
/// commit: `register(watermark = next_id)` at `BEGIN` → run the dedup
/// *pipeline* outside the lock (a pure interleave point — it touches no
/// shared state) → *reserve* an id range (allocation only; nothing on
/// disk yet) → *splice* the chunk to disk → *publish* a recipe
/// referencing it → `deregister`. The collector runs a single mark-sweep
/// pass at an arbitrary point in the interleaving: *mark* snapshots the
/// sweep cutoff and the set of chunks referenced by recipes; *sweep* then
/// deletes unmarked chunks below the cutoff, one chunk per step (each
/// step is a crash/interleaving point).
///
/// The store starts with one pre-existing unreferenced chunk (id 0), so a
/// collector that protects everything fails quiescence just as surely as
/// one that protects nothing fails the invariant.
pub struct GcProtectModel {
    writers: usize,
    /// The shipped rule: the sweep cutoff honours registered session
    /// watermarks. The mutant ignores them (cutoff = the collector's own
    /// allocation watermark), deleting chunks a still-uncommitted session
    /// just wrote.
    honor_watermarks: bool,
    /// The shipped publish order splices chunks before publishing the
    /// recipes that reference them (`FLUSH_ORDER` discipline). The mutant
    /// flips the two steps, exposing a window where a recipe on disk
    /// references a chunk that is not.
    publish_before_splice: bool,
}

impl GcProtectModel {
    /// The shipped protocol: cutoff = min(own watermark, registered
    /// session watermarks); splice before publish.
    pub fn shipped() -> GcProtectModel {
        GcProtectModel { writers: 2, honor_watermarks: true, publish_before_splice: false }
    }

    /// The seeded bug: the cutoff ignores the session registry, so a
    /// session's freshly spliced, not-yet-referenced chunks are swept as
    /// garbage. The checker must catch it.
    pub fn mutant_gc_protect() -> GcProtectModel {
        GcProtectModel { writers: 2, honor_watermarks: false, publish_before_splice: false }
    }

    /// The seeded ordering bug: the publish phase writes a session's
    /// recipe before splicing its staged chunk, so every interleaving
    /// (and every crash point) between the two steps has a recipe
    /// referencing a chunk missing from disk. The checker must catch it.
    pub fn mutant_splice_order() -> GcProtectModel {
        GcProtectModel { writers: 2, honor_watermarks: true, publish_before_splice: true }
    }
}

/// Writer lifecycle position. `W_SPLICE_OR_PUBLISH` and
/// `W_PUBLISH_OR_SPLICE` are the two publish-phase steps whose order
/// [`GcProtectModel::publish_before_splice`] flips.
const W_REGISTER: u8 = 0;
const W_PIPELINE: u8 = 1;
const W_RESERVE: u8 = 2;
const W_SPLICE_OR_PUBLISH: u8 = 3;
const W_PUBLISH_OR_SPLICE: u8 = 4;
const W_DEREGISTER: u8 = 5;
const W_DONE: u8 = 6;

/// GC phase.
const GC_IDLE: u8 = 0;
const GC_MARKED: u8 = 1;
const GC_DONE: u8 = 2;

/// Protected-GC state. Chunk ids are indices into `disk`; id 0 is the
/// pre-existing garbage, writer `r` allocates id `r + 1`.
#[derive(Debug, Clone)]
pub struct GcProtectState {
    w_pc: Vec<u8>,
    /// Registered watermark per writer (`None` = not registered).
    watermark: Vec<Option<u8>>,
    /// Chunk id each writer reserved; on disk only after its splice step.
    w_chunk: Vec<Option<u8>>,
    /// Published recipes: the chunk id each references.
    recipes: Vec<Option<u8>>,
    next_id: u8,
    disk: Vec<bool>,
    gc_phase: u8,
    cutoff: u8,
    /// Mark snapshot: chunks referenced by a recipe at mark time.
    live: Vec<bool>,
    sweep_idx: usize,
}

impl Model for GcProtectModel {
    type State = GcProtectState;

    fn init(&self) -> GcProtectState {
        let slots = self.writers + 1;
        let mut disk = vec![false; slots];
        disk[0] = true; // pre-existing unreferenced garbage
        GcProtectState {
            w_pc: vec![W_REGISTER; self.writers],
            watermark: vec![None; self.writers],
            w_chunk: vec![None; self.writers],
            recipes: vec![None; self.writers],
            next_id: 1,
            disk,
            gc_phase: GC_IDLE,
            cutoff: 0,
            live: vec![false; slots],
            sweep_idx: 0,
        }
    }

    fn threads(&self) -> usize {
        1 + self.writers
    }

    fn enabled(&self, s: &GcProtectState, tid: usize) -> bool {
        if tid == 0 {
            s.gc_phase < GC_DONE
        } else {
            s.w_pc[tid - 1] < W_DONE
        }
    }

    fn step(&self, s: &mut GcProtectState, tid: usize) {
        if tid == 0 {
            if s.gc_phase == GC_IDLE {
                // Mark: snapshot cutoff and recipe-referenced chunks.
                s.cutoff = s.next_id;
                if self.honor_watermarks {
                    for wm in s.watermark.iter().flatten() {
                        s.cutoff = s.cutoff.min(*wm);
                    }
                }
                for c in s.recipes.iter().flatten() {
                    s.live[*c as usize] = true;
                }
                s.sweep_idx = 0;
                s.gc_phase = GC_MARKED;
            } else {
                // Sweep one chunk slot per step.
                let i = s.sweep_idx;
                if s.disk[i] && !s.live[i] && (i as u8) < s.cutoff {
                    s.disk[i] = false;
                }
                s.sweep_idx += 1;
                if s.sweep_idx == s.disk.len() {
                    s.gc_phase = GC_DONE;
                }
            }
        } else {
            let r = tid - 1;
            let splice = |s: &mut GcProtectState| {
                if let Some(id) = s.w_chunk[r] {
                    s.disk[id as usize] = true;
                }
            };
            let publish = |s: &mut GcProtectState| s.recipes[r] = s.w_chunk[r];
            match s.w_pc[r] {
                W_REGISTER => s.watermark[r] = Some(s.next_id),
                // The dedup pipeline runs outside the lock and touches no
                // shared state — modelled as a pure interleave point.
                W_PIPELINE => {}
                W_RESERVE => {
                    // Allocation only: the id is claimed but nothing is
                    // on disk until the splice step.
                    s.w_chunk[r] = Some(s.next_id);
                    s.next_id += 1;
                }
                W_SPLICE_OR_PUBLISH => {
                    if self.publish_before_splice {
                        publish(s);
                    } else {
                        splice(s);
                    }
                }
                W_PUBLISH_OR_SPLICE => {
                    if self.publish_before_splice {
                        splice(s);
                    } else {
                        publish(s);
                    }
                }
                W_DEREGISTER => s.watermark[r] = None,
                _ => {}
            }
            s.w_pc[r] += 1;
        }
    }

    fn invariant(&self, s: &GcProtectState) -> Result<(), String> {
        for (r, recipe) in s.recipes.iter().enumerate() {
            if let Some(c) = recipe {
                if !s.disk[*c as usize] {
                    return Err(format!(
                        "session {r}'s recipe references chunk {c}, which is not on \
                         disk — either GC swept it (cutoff {}, watermarks {:?}) or \
                         the recipe was published before its chunk was spliced",
                        s.cutoff, s.watermark
                    ));
                }
            }
        }
        Ok(())
    }

    fn quiescent(&self, s: &GcProtectState) -> Result<(), String> {
        if s.disk[0] {
            return Err("pre-existing garbage chunk 0 was never reclaimed".into());
        }
        for (r, recipe) in s.recipes.iter().enumerate() {
            match recipe {
                None => return Err(format!("session {r} never committed its recipe")),
                Some(c) if !s.disk[*c as usize] => {
                    return Err(format!("session {r}'s chunk {c} missing at quiescence"))
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mck::check;

    const BUDGET: usize = 2_000_000;

    #[test]
    fn shipped_flush_order_is_crash_consistent() {
        let result = check(&FlushModel::shipped(), BUDGET);
        assert!(result.passed(), "violation: {:?}", result.violation);
        // The workload is tiny by design; ~2 dozen distinct states is the
        // true exhaustive count (queue claims are popped deterministically,
        // so symmetric worker schedules collapse in the dedup set).
        assert!(result.states >= 20, "too few states: {}", result.states);
    }

    #[test]
    fn reversed_flush_order_is_caught() {
        let result = check(&FlushModel::mutant_flush_order(), BUDGET);
        let v = result.violation.expect("reversed order must violate crash consistency");
        assert!(v.message.contains("crash point"), "{}", v.message);
    }

    #[test]
    fn any_flush_order_violating_a_ref_edge_is_caught() {
        // Not just the full reversal: every permutation that breaks an
        // edge must fail, and every permutation preserving all edges must
        // pass (there are exactly three: the shipped one, and the two
        // where FileManifest flushes earlier among the later kinds).
        let kinds = FileKind::FLUSH_ORDER;
        let mut pass = 0usize;
        let mut fail = 0usize;
        for p in permutations(&kinds) {
            let model = FlushModel { order: p.clone(), workers: 2 };
            let edges_ok = crate::passes::REF_EDGES.iter().all(|(referrer, referee)| {
                let pos = |n: &str| p.iter().position(|k| format!("{k:?}") == n);
                match (pos(referrer), pos(referee)) {
                    (Some(a), Some(b)) => b < a,
                    _ => false,
                }
            });
            let result = check(&model, BUDGET);
            assert_eq!(
                result.passed(),
                edges_ok,
                "order {p:?}: edges_ok={edges_ok} but checker said {:?}",
                result.violation
            );
            if edges_ok {
                pass += 1;
            } else {
                fail += 1;
            }
        }
        assert_eq!(pass, 3);
        assert_eq!(fail, 21);
    }

    fn permutations(kinds: &[FileKind; 4]) -> Vec<Vec<FileKind>> {
        let mut out = Vec::new();
        let mut items = kinds.to_vec();
        permute(&mut items, 0, &mut out);
        out
    }

    fn permute(items: &mut Vec<FileKind>, k: usize, out: &mut Vec<Vec<FileKind>>) {
        if k == items.len() {
            out.push(items.clone());
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, out);
            items.swap(k, i);
        }
    }

    #[test]
    fn shipped_ring_prune_loses_nothing() {
        let result = check(&RingModel::shipped(), BUDGET);
        assert!(result.passed(), "violation: {:?}", result.violation);
        assert!(result.states > 100, "too few states: {}", result.states);
    }

    #[test]
    fn shipped_gc_protection_is_safe_and_reclaims_garbage() {
        let result = check(&GcProtectModel::shipped(), BUDGET);
        assert!(result.passed(), "violation: {:?}", result.violation);
        assert!(result.states > 100, "too few states: {}", result.states);
    }

    #[test]
    fn watermark_ignoring_gc_is_caught() {
        let result = check(&GcProtectModel::mutant_gc_protect(), BUDGET);
        let v = result.violation.expect("ignoring session watermarks must sweep a live chunk");
        assert!(v.message.contains("swept"), "{}", v.message);
        // The repro schedule replays deterministically.
        let model = GcProtectModel::mutant_gc_protect();
        let mut s = model.init();
        for &tid in &v.schedule {
            model.step(&mut s, tid);
        }
        assert_eq!(format!("{s:?}"), v.state);
    }

    #[test]
    fn publish_before_splice_is_caught() {
        let result = check(&GcProtectModel::mutant_splice_order(), BUDGET);
        let v = result
            .violation
            .expect("publishing a recipe before splicing its chunk must violate the invariant");
        assert!(v.message.contains("spliced"), "{}", v.message);
        // The repro schedule replays deterministically.
        let model = GcProtectModel::mutant_splice_order();
        let mut s = model.init();
        for &tid in &v.schedule {
            model.step(&mut s, tid);
        }
        assert_eq!(format!("{s:?}"), v.state);
    }

    #[test]
    fn gc_that_protects_everything_fails_quiescence() {
        // Guard the guard: a cutoff of zero (sweep nothing, ever) must be
        // rejected too — via the unreclaimed-garbage quiescence check —
        // so the shipped model cannot rot into vacuous safety.
        struct NeverSweep;
        impl Model for NeverSweep {
            type State = GcProtectState;
            fn init(&self) -> GcProtectState {
                GcProtectModel::shipped().init()
            }
            fn threads(&self) -> usize {
                GcProtectModel::shipped().threads()
            }
            fn enabled(&self, s: &GcProtectState, tid: usize) -> bool {
                GcProtectModel::shipped().enabled(s, tid)
            }
            fn step(&self, s: &mut GcProtectState, tid: usize) {
                GcProtectModel::shipped().step(s, tid);
                s.cutoff = 0; // paranoia mutant: protect every id
            }
            fn invariant(&self, s: &GcProtectState) -> Result<(), String> {
                GcProtectModel::shipped().invariant(s)
            }
            fn quiescent(&self, s: &GcProtectState) -> Result<(), String> {
                GcProtectModel::shipped().quiescent(s)
            }
        }
        let result = check(&NeverSweep, BUDGET);
        let v = result.violation.expect("a GC that never sweeps must fail quiescence");
        assert!(v.message.contains("never reclaimed"), "{}", v.message);
    }

    #[test]
    fn eager_ring_prune_is_caught() {
        let result = check(&RingModel::mutant_ring_prune(), BUDGET);
        let v = result.violation.expect("eager prune must lose events in some schedule");
        assert!(v.message.contains("pruned") || v.message.contains("event loss"), "{}", v.message);
        // The repro schedule replays deterministically.
        let model = RingModel::mutant_ring_prune();
        let mut s = model.init();
        for &tid in &v.schedule {
            model.step(&mut s, tid);
        }
        assert_eq!(format!("{s:?}"), v.state);
    }
}
