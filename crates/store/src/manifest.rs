//! DiskChunkManifests: the hash sequences describing stored data blocks.
//!
//! Per the paper (Fig. 3), a Manifest is "a sequence of hash values
//! representing the data blocks within the corresponding DiskChunk", where
//! each entry costs 36 bytes — the 20-byte hash plus 8-byte start position
//! and 8-byte size — and the MHD format adds "a one-byte Hook flag to
//! indicate whether this entry is a Hook". The SubChunk format instead
//! groups entries by container, each group sharing a 28-byte record with
//! "the address and the number of the chunks contained in the same
//! DiskChunk". SparseIndexing manifests describe *segments* whose chunks
//! can live in many containers, so each entry carries its own container
//! pointer.
//!
//! The encodings below reproduce exactly those per-entry costs, so the
//! measured `manifest_bytes` in the ledger is directly comparable to the
//! closed forms of Table I.

use mhd_hash::{ChunkHash, FxHashMap};

use crate::chunk_store::DiskChunkId;
use crate::{StoreError, StoreResult};

/// Identifier of a Manifest (dense sequence number; rendered as hex for
/// the hash-addressable file name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ManifestId(pub u64);

impl ManifestId {
    /// Object name in the backend namespace.
    pub fn name(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// One data block described by a Manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// SHA-1 of the block.
    pub hash: ChunkHash,
    /// The DiskChunk holding the block's bytes.
    pub container: DiskChunkId,
    /// Byte offset of the block within the container.
    pub offset: u64,
    /// Block size in bytes.
    pub size: u64,
    /// MHD Hook flag: entry points (never merged or re-chunked).
    pub is_hook: bool,
}

impl ManifestEntry {
    /// Exclusive end offset within the container.
    pub fn end(&self) -> u64 {
        self.offset + self.size
    }
}

/// On-disk layout of a Manifest, matching the per-algorithm formats of the
/// paper's analysis (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestFormat {
    /// 36 bytes/entry, single shared container (CDC, Bimodal).
    Plain,
    /// 37 bytes/entry — Plain plus the MHD one-byte Hook flag.
    HookFlags,
    /// Groups of entries sharing a 28-byte container record, 36 bytes per
    /// entry (SubChunk's small-chunk-to-container-chunk mapping).
    Grouped,
    /// 44 bytes/entry with a per-entry container pointer (SparseIndexing
    /// segment manifests, which span containers and repeat hashes).
    PerEntryContainer,
}

const ENTRY_BASE: usize = 36; // hash 20 + offset 8 + size 8
const GROUP_HEADER: usize = 28; // container address 20 + chunk count 8
const ENVELOPE: usize = 5; // format tag 1 + entry count 4

/// A Manifest plus its identity and format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Identity (backend object name derives from this).
    pub id: ManifestId,
    /// Serialisation format (fixed per engine).
    pub format: ManifestFormat,
    /// Block descriptions, in container order for single-container formats
    /// and stream order for segment manifests.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Creates an empty manifest.
    pub fn new(id: ManifestId, format: ManifestFormat) -> Self {
        Manifest { id, format, entries: Vec::new() }
    }

    /// Encoded size in bytes without materialising the encoding.
    pub fn encoded_len(&self) -> usize {
        let n = self.entries.len();
        ENVELOPE
            + match self.format {
                ManifestFormat::Plain => 8 + n * ENTRY_BASE,
                ManifestFormat::HookFlags => 8 + n * (ENTRY_BASE + 1),
                ManifestFormat::Grouped => n * ENTRY_BASE + self.group_count() * GROUP_HEADER,
                ManifestFormat::PerEntryContainer => n * (ENTRY_BASE + 8),
            }
    }

    /// Number of maximal runs of entries sharing a container.
    pub fn group_count(&self) -> usize {
        let mut count = 0;
        let mut last: Option<DiskChunkId> = None;
        for e in &self.entries {
            if last != Some(e.container) {
                count += 1;
                last = Some(e.container);
            }
        }
        count
    }

    /// Serialises the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.push(match self.format {
            ManifestFormat::Plain => 0u8,
            ManifestFormat::HookFlags => 1,
            ManifestFormat::Grouped => 2,
            ManifestFormat::PerEntryContainer => 3,
        });
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());

        match self.format {
            ManifestFormat::Plain | ManifestFormat::HookFlags => {
                let container = self.entries.first().map(|e| e.container.0).unwrap_or(0);
                out.extend_from_slice(&container.to_le_bytes());
                for e in &self.entries {
                    debug_assert_eq!(
                        e.container.0, container,
                        "single-container format with mixed containers"
                    );
                    out.extend_from_slice(e.hash.as_bytes());
                    out.extend_from_slice(&e.offset.to_le_bytes());
                    out.extend_from_slice(&e.size.to_le_bytes());
                    if self.format == ManifestFormat::HookFlags {
                        out.push(e.is_hook as u8);
                    }
                }
            }
            ManifestFormat::Grouped => {
                let mut i = 0;
                while i < self.entries.len() {
                    let container = self.entries[i].container;
                    let run_len =
                        self.entries[i..].iter().take_while(|e| e.container == container).count();
                    // 28-byte group record: container address padded to the
                    // paper's 20-byte address width + 8-byte chunk count.
                    out.extend_from_slice(&container.0.to_le_bytes());
                    out.extend_from_slice(&[0u8; 12]);
                    out.extend_from_slice(&(run_len as u64).to_le_bytes());
                    for e in &self.entries[i..i + run_len] {
                        out.extend_from_slice(e.hash.as_bytes());
                        out.extend_from_slice(&e.offset.to_le_bytes());
                        out.extend_from_slice(&e.size.to_le_bytes());
                    }
                    i += run_len;
                }
            }
            ManifestFormat::PerEntryContainer => {
                for e in &self.entries {
                    out.extend_from_slice(e.hash.as_bytes());
                    out.extend_from_slice(&e.container.0.to_le_bytes());
                    out.extend_from_slice(&e.offset.to_le_bytes());
                    out.extend_from_slice(&e.size.to_le_bytes());
                }
            }
        }
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }

    /// Deserialises a manifest previously produced by [`Manifest::encode`].
    pub fn decode(id: ManifestId, data: &[u8]) -> StoreResult<Self> {
        let mut r = Cursor { data, pos: 0 };
        let format = match r.u8()? {
            0 => ManifestFormat::Plain,
            1 => ManifestFormat::HookFlags,
            2 => ManifestFormat::Grouped,
            3 => ManifestFormat::PerEntryContainer,
            t => return Err(StoreError::Corrupt(format!("unknown manifest format tag {t}"))),
        };
        let n = r.u32()? as usize;
        let mut entries = Vec::with_capacity(n);

        match format {
            ManifestFormat::Plain | ManifestFormat::HookFlags => {
                let container = DiskChunkId(r.u64()?);
                for _ in 0..n {
                    let hash = r.hash()?;
                    let offset = r.u64()?;
                    let size = r.u64()?;
                    let is_hook =
                        if format == ManifestFormat::HookFlags { r.u8()? != 0 } else { false };
                    entries.push(ManifestEntry { hash, container, offset, size, is_hook });
                }
            }
            ManifestFormat::Grouped => {
                while entries.len() < n {
                    let container = DiskChunkId(r.u64()?);
                    r.skip(12)?;
                    let run_len = r.u64()? as usize;
                    for _ in 0..run_len {
                        let hash = r.hash()?;
                        let offset = r.u64()?;
                        let size = r.u64()?;
                        entries.push(ManifestEntry {
                            hash,
                            container,
                            offset,
                            size,
                            is_hook: false,
                        });
                    }
                }
            }
            ManifestFormat::PerEntryContainer => {
                for _ in 0..n {
                    let hash = r.hash()?;
                    let container = DiskChunkId(r.u64()?);
                    let offset = r.u64()?;
                    let size = r.u64()?;
                    entries.push(ManifestEntry { hash, container, offset, size, is_hook: false });
                }
            }
        }
        if entries.len() != n {
            return Err(StoreError::Corrupt(format!(
                "manifest {id:?}: expected {n} entries, decoded {}",
                entries.len()
            )));
        }
        Ok(Manifest { id, format, entries })
    }

    /// Builds a hash → entry-index lookup table. Later entries win when a
    /// hash repeats (only segment manifests repeat hashes).
    pub fn build_index(&self) -> FxHashMap<ChunkHash, u32> {
        let mut map = FxHashMap::default();
        map.reserve(self.entries.len());
        for (i, e) in self.entries.iter().enumerate() {
            map.insert(e.hash, i as u32);
        }
        map
    }

    /// Verifies that the entries exactly tile `[0, container_len)` of a
    /// single container — the invariant HHR re-chunking must preserve.
    pub fn check_tiling(&self, container_len: u64) -> Result<(), String> {
        let mut cursor = 0u64;
        let container = match self.entries.first() {
            Some(e) => e.container,
            None => {
                return if container_len == 0 {
                    Ok(())
                } else {
                    Err("empty manifest for non-empty container".into())
                }
            }
        };
        for (i, e) in self.entries.iter().enumerate() {
            if e.container != container {
                return Err(format!("entry {i} switches container"));
            }
            if e.offset != cursor {
                return Err(format!("entry {i} starts at {} but cursor is {cursor}", e.offset));
            }
            if e.size == 0 {
                return Err(format!("entry {i} has zero size"));
            }
            cursor = e.end();
        }
        if cursor != container_len {
            return Err(format!("entries cover {cursor} of {container_len} bytes"));
        }
        Ok(())
    }

    /// Total bytes described by the entries.
    pub fn covered_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> StoreResult<&[u8]> {
        if self.pos + n > self.data.len() {
            return Err(StoreError::Corrupt("manifest truncated".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// `take(N)` as a fixed-size array; the copy replaces a
    /// `try_into().expect(..)` so truncation is the only failure mode.
    fn array<const N: usize>(&mut self) -> StoreResult<[u8; N]> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }
    fn u8(&mut self) -> StoreResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> StoreResult<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> StoreResult<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn hash(&mut self) -> StoreResult<ChunkHash> {
        Ok(ChunkHash::from_bytes(self.array()?))
    }
    fn skip(&mut self, n: usize) -> StoreResult<()> {
        self.take(n).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_hash::sha1;

    fn entry(i: u64, container: u64, offset: u64, size: u64, is_hook: bool) -> ManifestEntry {
        ManifestEntry {
            hash: sha1(&i.to_le_bytes()),
            container: DiskChunkId(container),
            offset,
            size,
            is_hook,
        }
    }

    fn sample(format: ManifestFormat) -> Manifest {
        let mut m = Manifest::new(ManifestId(7), format);
        let same_container =
            !matches!(format, ManifestFormat::Grouped | ManifestFormat::PerEntryContainer);
        for i in 0..10u64 {
            let c = if same_container { 1 } else { i / 3 };
            m.entries.push(entry(i, c, i * 100, 100, i % 4 == 0));
        }
        m
    }

    #[test]
    fn round_trip_all_formats() {
        for format in [
            ManifestFormat::Plain,
            ManifestFormat::HookFlags,
            ManifestFormat::Grouped,
            ManifestFormat::PerEntryContainer,
        ] {
            let m = sample(format);
            let bytes = m.encode();
            assert_eq!(bytes.len(), m.encoded_len(), "{format:?}");
            let back = Manifest::decode(m.id, &bytes).unwrap();
            // Hook flags survive only in the HookFlags format.
            if format == ManifestFormat::HookFlags {
                assert_eq!(back, m);
            } else {
                assert_eq!(back.entries.len(), m.entries.len());
                for (a, b) in back.entries.iter().zip(&m.entries) {
                    assert_eq!(
                        (a.hash, a.container, a.offset, a.size),
                        (b.hash, b.container, b.offset, b.size)
                    );
                }
            }
        }
    }

    #[test]
    fn encoded_len_matches_paper_constants() {
        let n = 10usize;
        assert_eq!(sample(ManifestFormat::Plain).encoded_len(), 5 + 8 + n * 36);
        assert_eq!(sample(ManifestFormat::HookFlags).encoded_len(), 5 + 8 + n * 37);
        // 10 entries with containers 0,0,0,1,1,1,2,2,2,3 → 4 groups.
        assert_eq!(sample(ManifestFormat::Grouped).encoded_len(), 5 + n * 36 + 4 * 28);
        assert_eq!(sample(ManifestFormat::PerEntryContainer).encoded_len(), 5 + n * 44);
    }

    #[test]
    fn group_count_counts_runs_not_distinct() {
        let mut m = Manifest::new(ManifestId(1), ManifestFormat::Grouped);
        for &c in &[1u64, 1, 2, 1] {
            let off = m.entries.len() as u64 * 10;
            m.entries.push(entry(off, c, off, 10, false));
        }
        assert_eq!(m.group_count(), 3); // runs: [1,1], [2], [1]
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            Manifest::decode(ManifestId(0), &[9, 0, 0, 0, 0]),
            Err(StoreError::Corrupt(_))
        ));
        assert!(matches!(Manifest::decode(ManifestId(0), &[0, 1]), Err(StoreError::Corrupt(_))));
        // Valid tag but truncated entries.
        let m = sample(ManifestFormat::Plain);
        let bytes = m.encode();
        assert!(matches!(
            Manifest::decode(m.id, &bytes[..bytes.len() - 1]),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn tiling_check_accepts_exact_cover() {
        let mut m = Manifest::new(ManifestId(1), ManifestFormat::HookFlags);
        m.entries.push(entry(0, 5, 0, 300, true));
        m.entries.push(entry(1, 5, 300, 200, false));
        assert!(m.check_tiling(500).is_ok());
    }

    #[test]
    fn tiling_check_rejects_gap_overlap_shortfall() {
        let mut gap = Manifest::new(ManifestId(1), ManifestFormat::HookFlags);
        gap.entries.push(entry(0, 5, 0, 100, false));
        gap.entries.push(entry(1, 5, 150, 100, false));
        assert!(gap.check_tiling(250).is_err());

        let mut short = Manifest::new(ManifestId(2), ManifestFormat::HookFlags);
        short.entries.push(entry(0, 5, 0, 100, false));
        assert!(short.check_tiling(200).is_err());

        let empty = Manifest::new(ManifestId(3), ManifestFormat::HookFlags);
        assert!(empty.check_tiling(0).is_ok());
        assert!(empty.check_tiling(1).is_err());
    }

    #[test]
    fn index_maps_hashes_to_positions() {
        let m = sample(ManifestFormat::HookFlags);
        let idx = m.build_index();
        for (i, e) in m.entries.iter().enumerate() {
            assert_eq!(idx.get(&e.hash), Some(&(i as u32)));
        }
    }

    #[test]
    fn covered_bytes_sums_sizes() {
        assert_eq!(sample(ManifestFormat::Plain).covered_bytes(), 1000);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn arb_entries(same_container: bool) -> impl Strategy<Value = Vec<ManifestEntry>> {
            proptest::collection::vec((any::<u64>(), 0u64..4, 1u64..10_000, any::<bool>()), 0..40)
                .prop_map(move |raw| {
                    let mut offset = 0;
                    raw.into_iter()
                        .map(|(seed, container, size, is_hook)| {
                            let e = ManifestEntry {
                                hash: sha1(&seed.to_le_bytes()),
                                container: DiskChunkId(if same_container { 1 } else { container }),
                                offset,
                                size,
                                is_hook,
                            };
                            offset += size;
                            e
                        })
                        .collect()
                })
        }

        proptest! {
            #[test]
            fn round_trip_hookflags(entries in arb_entries(true)) {
                let m = Manifest { id: ManifestId(9), format: ManifestFormat::HookFlags, entries };
                let back = Manifest::decode(m.id, &m.encode()).unwrap();
                prop_assert_eq!(back, m);
            }

            #[test]
            fn round_trip_grouped(entries in arb_entries(false)) {
                let m = Manifest { id: ManifestId(9), format: ManifestFormat::Grouped, entries };
                let back = Manifest::decode(m.id, &m.encode()).unwrap();
                prop_assert_eq!(back.entries.len(), m.entries.len());
                for (a, b) in back.entries.iter().zip(&m.entries) {
                    prop_assert_eq!((a.hash, a.container, a.offset, a.size),
                                    (b.hash, b.container, b.offset, b.size));
                }
            }

            #[test]
            fn round_trip_per_entry_container(entries in arb_entries(false)) {
                let m = Manifest {
                    id: ManifestId(9),
                    format: ManifestFormat::PerEntryContainer,
                    entries,
                };
                let back = Manifest::decode(m.id, &m.encode()).unwrap();
                prop_assert_eq!(back.entries.len(), m.entries.len());
            }

            /// encoded_len is always exact, for every format.
            #[test]
            fn encoded_len_is_exact(entries in arb_entries(false)) {
                for format in [ManifestFormat::Grouped, ManifestFormat::PerEntryContainer] {
                    let m = Manifest { id: ManifestId(3), format, entries: entries.clone() };
                    prop_assert_eq!(m.encode().len(), m.encoded_len());
                }
            }
        }
    }
}
