//! FileManifests: per-input-file reconstruction recipes.
//!
//! A FileManifest is the ordered list of extents — `(container, offset,
//! length)` triples — whose concatenation reproduces the original file.
//! Per the paper, "a new entry will only be written into the FileManifest
//! at the terminating point of neighboring chunks of duplicate or
//! non-duplicate data slices within one file": contiguous ranges coalesce
//! into one entry. [`FileManifest::push`] implements that coalescing, which
//! is what differentiates the algorithms in Fig. 7(c) — an engine that
//! keeps a file's data contiguous in few containers produces few extents.

use serde::{Deserialize, Serialize};

use crate::chunk_store::DiskChunkId;
use crate::{StoreError, StoreResult};

/// One contiguous byte range inside a DiskChunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Extent {
    /// Container holding the bytes.
    pub container: DiskChunkId,
    /// Offset within the container.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Encoded size of one extent entry: container address (paper width, 20)
/// plus 8-byte offset and 8-byte length.
pub const EXTENT_BYTES: usize = 36;

/// Little-endian u32 at `at`; callers have already bounds-checked, so the
/// copy replaces a `try_into().expect(..)`.
fn le_u32(data: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&data[at..at + 4]);
    u32::from_le_bytes(raw)
}

/// Little-endian u64 at `at`; same contract as [`le_u32`].
fn le_u64(data: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(raw)
}

impl serde::Serialize for DiskChunkId {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(self.0)
    }
}

impl<'de> serde::Deserialize<'de> for DiskChunkId {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(DiskChunkId(u64::deserialize(d)?))
    }
}

/// The recipe for one input file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileManifest {
    extents: Vec<Extent>,
    total_len: u64,
}

/// LEB128 unsigned varint append.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 unsigned varint read.
fn get_varint(data: &[u8], pos: &mut usize) -> StoreResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or_else(|| StoreError::Corrupt("varint truncated".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(StoreError::Corrupt("varint overflow".into()));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

impl FileManifest {
    /// Creates an empty recipe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `extent`, merging it into the previous entry when the two
    /// are byte-adjacent in the same container.
    pub fn push(&mut self, extent: Extent) {
        if extent.len == 0 {
            return;
        }
        self.total_len += extent.len;
        if let Some(last) = self.extents.last_mut() {
            if last.container == extent.container && last.offset + last.len == extent.offset {
                last.len += extent.len;
                return;
            }
        }
        self.extents.push(extent);
    }

    /// The coalesced extents.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Number of entries after coalescing (the Fig. 7(c) driver).
    pub fn entry_count(&self) -> usize {
        self.extents.len()
    }

    /// Total file length described.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Encoded size: [`EXTENT_BYTES`] per entry plus a 4-byte count.
    pub fn encoded_len(&self) -> usize {
        4 + self.extents.len() * EXTENT_BYTES
    }

    /// Serialises the recipe.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&(self.extents.len() as u32).to_le_bytes());
        for e in &self.extents {
            out.extend_from_slice(&e.container.0.to_le_bytes());
            out.extend_from_slice(&[0u8; 12]); // pad container address to 20
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
        }
        debug_assert_eq!(out.len(), self.encoded_len());
        out
    }

    /// Deserialises a recipe produced by [`FileManifest::encode`].
    pub fn decode(data: &[u8]) -> StoreResult<Self> {
        if data.len() < 4 {
            return Err(StoreError::Corrupt("file manifest truncated".into()));
        }
        let n = le_u32(data, 0) as usize;
        if data.len() != 4 + n * EXTENT_BYTES {
            return Err(StoreError::Corrupt(format!(
                "file manifest size {} does not match {n} entries",
                data.len()
            )));
        }
        let mut fm = FileManifest::new();
        for i in 0..n {
            let base = 4 + i * EXTENT_BYTES;
            let container = DiskChunkId(le_u64(data, base));
            let offset = le_u64(data, base + 20);
            let len = le_u64(data, base + 28);
            // Reinsert without re-coalescing: entries were already maximal.
            fm.extents.push(Extent { container, offset, len });
            fm.total_len += len;
        }
        Ok(fm)
    }
}

impl FileManifest {
    /// Compressed encoding in the spirit of Meister et al.'s file-recipe
    /// compression (FAST'13, the paper's \[25\]): container ids are
    /// delta-coded (recipes overwhelmingly reference few containers, often
    /// consecutively), offsets are delta-coded against the previous
    /// extent's end within the same container (sequential layout makes the
    /// delta zero), and everything is LEB128 varints instead of
    /// fixed-width fields.
    ///
    /// This is an extension beyond the paper's accounting (which charges
    /// the fixed 36-byte entries counted by [`FileManifest::encoded_len`]);
    /// the `recipe_compression` integration test quantifies the saving.
    pub fn encode_compact(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.extents.len() * 6 + 4);
        put_varint(&mut out, self.extents.len() as u64);
        let mut prev_container = 0u64;
        let mut prev_end = 0u64;
        for e in &self.extents {
            // Signed zig-zag delta for the container id.
            let delta = e.container.0 as i64 - prev_container as i64;
            put_varint(&mut out, ((delta << 1) ^ (delta >> 63)) as u64);
            if e.container.0 == prev_container {
                // Offset relative to the previous extent's end (0 when
                // the recipe reads the container sequentially).
                let delta = e.offset as i64 - prev_end as i64;
                put_varint(&mut out, ((delta << 1) ^ (delta >> 63)) as u64);
            } else {
                put_varint(&mut out, e.offset << 1); // absolute, zig-zagged
            }
            put_varint(&mut out, e.len);
            prev_container = e.container.0;
            prev_end = e.offset + e.len;
        }
        out
    }

    /// Decodes a recipe produced by [`FileManifest::encode_compact`].
    pub fn decode_compact(data: &[u8]) -> StoreResult<Self> {
        let mut pos = 0usize;
        let n = get_varint(data, &mut pos)? as usize;
        let mut fm = FileManifest::new();
        let mut prev_container = 0u64;
        let mut prev_end = 0u64;
        let unzig = |v: u64| -> i64 { ((v >> 1) as i64) ^ -((v & 1) as i64) };
        for _ in 0..n {
            let cd = unzig(get_varint(data, &mut pos)?);
            let container = (prev_container as i64 + cd) as u64;
            let od = unzig(get_varint(data, &mut pos)?);
            let offset =
                if container == prev_container { (prev_end as i64 + od) as u64 } else { od as u64 };
            let len = get_varint(data, &mut pos)?;
            fm.extents.push(Extent { container: DiskChunkId(container), offset, len });
            fm.total_len += len;
            prev_container = container;
            prev_end = offset + len;
        }
        if pos != data.len() {
            return Err(StoreError::Corrupt("trailing bytes in compact recipe".into()));
        }
        Ok(fm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(c: u64, offset: u64, len: u64) -> Extent {
        Extent { container: DiskChunkId(c), offset, len }
    }

    #[test]
    fn adjacent_extents_coalesce() {
        let mut fm = FileManifest::new();
        fm.push(ext(1, 0, 100));
        fm.push(ext(1, 100, 50)); // adjacent → merged
        fm.push(ext(1, 200, 10)); // gap → new entry
        fm.push(ext(2, 210, 5)); // different container → new entry
        assert_eq!(fm.entry_count(), 3);
        assert_eq!(fm.extents()[0], ext(1, 0, 150));
        assert_eq!(fm.total_len(), 165);
    }

    #[test]
    fn zero_length_extents_ignored() {
        let mut fm = FileManifest::new();
        fm.push(ext(1, 0, 0));
        assert_eq!(fm.entry_count(), 0);
        assert_eq!(fm.total_len(), 0);
    }

    #[test]
    fn round_trip() {
        let mut fm = FileManifest::new();
        fm.push(ext(1, 0, 100));
        fm.push(ext(3, 500, 250));
        let bytes = fm.encode();
        assert_eq!(bytes.len(), fm.encoded_len());
        assert_eq!(FileManifest::decode(&bytes).unwrap(), fm);
    }

    #[test]
    fn decode_rejects_bad_sizes() {
        assert!(FileManifest::decode(&[1]).is_err());
        let mut fm = FileManifest::new();
        fm.push(ext(1, 0, 100));
        let mut bytes = fm.encode();
        bytes.pop();
        assert!(FileManifest::decode(&bytes).is_err());
    }

    #[test]
    fn compact_round_trip_and_saving() {
        let mut fm = FileManifest::new();
        // Sequential reads within one container compress hard...
        fm.push(ext(3, 0, 4096));
        fm.push(ext(3, 8192, 4096)); // gap breaks coalescing
        fm.push(ext(3, 20_000, 100));
        // ...and cross-container hops still round-trip.
        fm.push(ext(1, 999_999, 7));
        fm.push(ext(3, 20_100, 50));
        let compact = fm.encode_compact();
        assert_eq!(FileManifest::decode_compact(&compact).unwrap(), fm);
        assert!(
            compact.len() * 3 < fm.encoded_len(),
            "compact {} vs fixed {}",
            compact.len(),
            fm.encoded_len()
        );
    }

    #[test]
    fn compact_rejects_garbage() {
        assert!(FileManifest::decode_compact(&[5]).is_err()); // says 5 entries, has none
        let mut fm = FileManifest::new();
        fm.push(ext(1, 0, 10));
        let mut bytes = fm.encode_compact();
        bytes.push(0); // trailing byte
        assert!(FileManifest::decode_compact(&bytes).is_err());
        assert!(FileManifest::decode_compact(&[0]).unwrap().extents().is_empty());
    }

    #[test]
    fn encoded_len_matches_entry_cost() {
        let mut fm = FileManifest::new();
        for i in 0..5 {
            fm.push(ext(i, i * 1000, 10)); // non-adjacent
        }
        assert_eq!(fm.encoded_len(), 4 + 5 * EXTENT_BYTES);
    }
}
