//! Concurrency-primitive facade for the batched I/O path.
//!
//! [`crate::BatchedDirBackend`]'s worker pool imports its channel and
//! thread-coordination primitives through this module rather than
//! straight from `std::sync` / `crossbeam`. The indirection pins the
//! exact primitive surface that `mhd-lint`'s deterministic model checker
//! mirrors: the flush-barrier model in `crates/lint/src/models.rs`
//! explores bounded interleavings of precisely these operations (job
//! send, per-write commit, done-channel barrier), so a primitive added
//! here without a model update is visible in review, and `mhd-lint`'s
//! L4 pass rejects direct `std::sync` / `crossbeam` imports in
//! `batched.rs`.
//!
//! The re-exports are the real implementations — there is no behavioral
//! shim; swapping in an instrumented implementation (loom-style) is a
//! one-module change.

pub use std::sync::mpsc;

pub use crossbeam::channel::{bounded, Receiver, SendError, Sender};
