//! Object storage backends.
//!
//! A [`Backend`] is a flat object store with four namespaces, one per
//! metadata [`FileKind`]. [`MemBackend`] keeps everything in RAM (the
//! default for experiments — the paper's numbers are counts and ratios, not
//! device latencies), while [`DirBackend`] lays the same objects out as
//! real files in a directory tree, mirroring the paper's "user space of the
//! Ext3 file system" prototypes. [`FaultBackend`] wraps another backend and
//! fails the n-th operation, for failure-injection tests.

use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;

use bytes::Bytes;

use crate::{StoreError, StoreResult};

/// The four metadata file categories of the paper's system (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FileKind {
    /// Container of non-duplicate data bytes.
    DiskChunk,
    /// DiskChunkManifest: hash sequence describing one DiskChunk.
    Manifest,
    /// Sampled hash value pointing at one Manifest.
    Hook,
    /// Per-input-file reconstruction recipe.
    FileManifest,
}

impl FileKind {
    /// Directory name used by [`DirBackend`].
    pub fn dir_name(&self) -> &'static str {
        match self {
            FileKind::DiskChunk => "chunks",
            FileKind::Manifest => "manifests",
            FileKind::Hook => "hooks",
            FileKind::FileManifest => "file_manifests",
        }
    }

    /// All categories, for iteration in reports.
    pub const ALL: [FileKind; 4] =
        [FileKind::DiskChunk, FileKind::Manifest, FileKind::Hook, FileKind::FileManifest];
}

/// A flat object store. `put` creates (a new inode), `update` rewrites an
/// existing object in place, `get`/`get_range` read.
///
/// DiskChunks and Hooks are never updated by the engines — that invariant
/// lives in the typed stores layered on top, not here.
pub trait Backend {
    /// Creates a new object. Fails with [`StoreError::AlreadyExists`] if the
    /// name is taken.
    fn put(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()>;

    /// Rewrites an existing object. Fails with [`StoreError::NotFound`] if
    /// absent.
    fn update(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()>;

    /// Reads a whole object.
    fn get(&mut self, kind: FileKind, name: &str) -> StoreResult<Bytes>;

    /// Reads `len` bytes at `offset`.
    fn get_range(
        &mut self,
        kind: FileKind,
        name: &str,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes>;

    /// Object size in bytes, or `NotFound`.
    fn size_of(&mut self, kind: FileKind, name: &str) -> StoreResult<u64>;

    /// Existence check without error plumbing.
    fn exists(&mut self, kind: FileKind, name: &str) -> bool;

    /// Number of objects of `kind` (== inode count for that category).
    fn count(&mut self, kind: FileKind) -> u64;

    /// Names of all objects of `kind`, sorted (deterministic iteration for
    /// reports and restore).
    fn list(&mut self, kind: FileKind) -> Vec<String>;

    /// Deletes an object (garbage collection). Fails with
    /// [`StoreError::NotFound`] if absent.
    fn delete(&mut self, kind: FileKind, name: &str) -> StoreResult<()>;
}

/// In-memory backend: a `BTreeMap` per [`FileKind`].
#[derive(Default)]
pub struct MemBackend {
    maps: [BTreeMap<String, Bytes>; 4],
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    fn map(&self, kind: FileKind) -> &BTreeMap<String, Bytes> {
        &self.maps[kind as usize]
    }

    fn map_mut(&mut self, kind: FileKind) -> &mut BTreeMap<String, Bytes> {
        &mut self.maps[kind as usize]
    }

    /// Total bytes stored in a category (used by ledger cross-checks).
    pub fn bytes_of_kind(&self, kind: FileKind) -> u64 {
        self.map(kind).values().map(|v| v.len() as u64).sum()
    }
}

impl Backend for MemBackend {
    fn put(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        let map = self.map_mut(kind);
        if map.contains_key(name) {
            return Err(StoreError::AlreadyExists { kind, name: name.to_string() });
        }
        map.insert(name.to_string(), Bytes::copy_from_slice(data));
        Ok(())
    }

    fn update(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        let map = self.map_mut(kind);
        match map.get_mut(name) {
            Some(slot) => {
                *slot = Bytes::copy_from_slice(data);
                Ok(())
            }
            None => Err(StoreError::NotFound { kind, name: name.to_string() }),
        }
    }

    fn get(&mut self, kind: FileKind, name: &str) -> StoreResult<Bytes> {
        self.map(kind)
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound { kind, name: name.to_string() })
    }

    fn get_range(
        &mut self,
        kind: FileKind,
        name: &str,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes> {
        let obj = self
            .map(kind)
            .get(name)
            .ok_or_else(|| StoreError::NotFound { kind, name: name.to_string() })?;
        let end = offset.checked_add(len).filter(|&e| e <= obj.len() as u64).ok_or(
            StoreError::OutOfRange { name: name.to_string(), offset, len, size: obj.len() as u64 },
        )?;
        Ok(obj.slice(offset as usize..end as usize))
    }

    fn size_of(&mut self, kind: FileKind, name: &str) -> StoreResult<u64> {
        self.map(kind)
            .get(name)
            .map(|v| v.len() as u64)
            .ok_or_else(|| StoreError::NotFound { kind, name: name.to_string() })
    }

    fn exists(&mut self, kind: FileKind, name: &str) -> bool {
        self.map(kind).contains_key(name)
    }

    fn count(&mut self, kind: FileKind) -> u64 {
        self.map(kind).len() as u64
    }

    fn list(&mut self, kind: FileKind) -> Vec<String> {
        self.map(kind).keys().cloned().collect()
    }

    fn delete(&mut self, kind: FileKind, name: &str) -> StoreResult<()> {
        self.map_mut(kind)
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::NotFound { kind, name: name.to_string() })
    }
}

/// Directory-tree backend: `root/{chunks,manifests,hooks,file_manifests}/`.
///
/// Object names become file names (names used by the substrate are always
/// hex strings or sanitised paths, so no escaping is needed beyond `/`
/// replacement).
pub struct DirBackend {
    root: PathBuf,
}

impl DirBackend {
    /// Creates the directory layout under `root`.
    pub fn create(root: impl Into<PathBuf>) -> StoreResult<Self> {
        let root = root.into();
        for kind in FileKind::ALL {
            std::fs::create_dir_all(root.join(kind.dir_name()))?;
        }
        Ok(DirBackend { root })
    }

    fn path(&self, kind: FileKind, name: &str) -> PathBuf {
        // FileManifest names can contain path separators; flatten them.
        let safe: String =
            name.chars().map(|c| if c == '/' || c == '\\' { '_' } else { c }).collect();
        self.root.join(kind.dir_name()).join(safe)
    }
}

impl Backend for DirBackend {
    fn put(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        let path = self.path(kind, name);
        if path.exists() {
            return Err(StoreError::AlreadyExists { kind, name: name.to_string() });
        }
        std::fs::write(path, data)?;
        Ok(())
    }

    fn update(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        let path = self.path(kind, name);
        if !path.exists() {
            return Err(StoreError::NotFound { kind, name: name.to_string() });
        }
        std::fs::write(path, data)?;
        Ok(())
    }

    fn get(&mut self, kind: FileKind, name: &str) -> StoreResult<Bytes> {
        match std::fs::read(self.path(kind, name)) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound { kind, name: name.to_string() })
            }
            Err(e) => Err(e.into()),
        }
    }

    fn get_range(
        &mut self,
        kind: FileKind,
        name: &str,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes> {
        let path = self.path(kind, name);
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound { kind, name: name.to_string() })
            }
            Err(e) => return Err(e.into()),
        };
        let size = file.metadata()?.len();
        if offset.checked_add(len).is_none_or(|e| e > size) {
            return Err(StoreError::OutOfRange { name: name.to_string(), offset, len, size });
        }
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn size_of(&mut self, kind: FileKind, name: &str) -> StoreResult<u64> {
        match std::fs::metadata(self.path(kind, name)) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound { kind, name: name.to_string() })
            }
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&mut self, kind: FileKind, name: &str) -> bool {
        self.path(kind, name).exists()
    }

    fn count(&mut self, kind: FileKind) -> u64 {
        std::fs::read_dir(self.root.join(kind.dir_name())).map(|d| d.count() as u64).unwrap_or(0)
    }

    fn list(&mut self, kind: FileKind) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(self.root.join(kind.dir_name()))
            .map(|d| {
                d.filter_map(|e| e.ok().and_then(|e| e.file_name().into_string().ok())).collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }

    fn delete(&mut self, kind: FileKind, name: &str) -> StoreResult<()> {
        match std::fs::remove_file(self.path(kind, name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound { kind, name: name.to_string() })
            }
            Err(e) => Err(e.into()),
        }
    }
}

/// Failure-injection wrapper: the `fail_after`-th mutating-or-reading
/// operation (0-based) returns an injected I/O error; everything before it
/// passes through.
pub struct FaultBackend<B> {
    inner: B,
    ops: u64,
    fail_at: u64,
}

impl<B: Backend> FaultBackend<B> {
    /// Wraps `inner`; the operation with index `fail_at` fails.
    pub fn new(inner: B, fail_at: u64) -> Self {
        FaultBackend { inner, ops: 0, fail_at }
    }

    /// Operations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    fn tick(&mut self) -> StoreResult<()> {
        let n = self.ops;
        self.ops += 1;
        if n == self.fail_at {
            Err(StoreError::Io(std::io::Error::other("injected fault")))
        } else {
            Ok(())
        }
    }
}

impl<B: Backend> Backend for FaultBackend<B> {
    fn put(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        self.tick()?;
        self.inner.put(kind, name, data)
    }
    fn update(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        self.tick()?;
        self.inner.update(kind, name, data)
    }
    fn get(&mut self, kind: FileKind, name: &str) -> StoreResult<Bytes> {
        self.tick()?;
        self.inner.get(kind, name)
    }
    fn get_range(
        &mut self,
        kind: FileKind,
        name: &str,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes> {
        self.tick()?;
        self.inner.get_range(kind, name, offset, len)
    }
    fn size_of(&mut self, kind: FileKind, name: &str) -> StoreResult<u64> {
        self.inner.size_of(kind, name)
    }
    fn exists(&mut self, kind: FileKind, name: &str) -> bool {
        self.inner.exists(kind, name)
    }
    fn count(&mut self, kind: FileKind) -> u64 {
        self.inner.count(kind)
    }
    fn list(&mut self, kind: FileKind) -> Vec<String> {
        self.inner.list(kind)
    }
    fn delete(&mut self, kind: FileKind, name: &str) -> StoreResult<()> {
        self.tick()?;
        self.inner.delete(kind, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &mut dyn Backend) {
        backend.put(FileKind::DiskChunk, "a", b"hello world").unwrap();
        assert!(matches!(
            backend.put(FileKind::DiskChunk, "a", b"x"),
            Err(StoreError::AlreadyExists { .. })
        ));
        assert_eq!(&backend.get(FileKind::DiskChunk, "a").unwrap()[..], b"hello world");
        assert_eq!(&backend.get_range(FileKind::DiskChunk, "a", 6, 5).unwrap()[..], b"world");
        assert!(matches!(
            backend.get_range(FileKind::DiskChunk, "a", 6, 6),
            Err(StoreError::OutOfRange { .. })
        ));
        assert_eq!(backend.size_of(FileKind::DiskChunk, "a").unwrap(), 11);
        assert!(backend.exists(FileKind::DiskChunk, "a"));
        assert!(!backend.exists(FileKind::Manifest, "a"));
        assert_eq!(backend.count(FileKind::DiskChunk), 1);
        assert_eq!(backend.count(FileKind::Hook), 0);

        backend.update(FileKind::DiskChunk, "a", b"rewritten").unwrap();
        assert_eq!(&backend.get(FileKind::DiskChunk, "a").unwrap()[..], b"rewritten");
        assert!(matches!(
            backend.update(FileKind::DiskChunk, "missing", b"x"),
            Err(StoreError::NotFound { .. })
        ));
        assert!(matches!(
            backend.get(FileKind::DiskChunk, "missing"),
            Err(StoreError::NotFound { .. })
        ));

        backend.put(FileKind::DiskChunk, "b", b"second").unwrap();
        assert_eq!(backend.list(FileKind::DiskChunk), vec!["a".to_string(), "b".to_string()]);

        backend.delete(FileKind::DiskChunk, "a").unwrap();
        assert!(!backend.exists(FileKind::DiskChunk, "a"));
        assert!(matches!(
            backend.delete(FileKind::DiskChunk, "a"),
            Err(StoreError::NotFound { .. })
        ));
        assert_eq!(backend.count(FileKind::DiskChunk), 1);
    }

    #[test]
    fn mem_backend_contract() {
        exercise(&mut MemBackend::new());
    }

    #[test]
    fn dir_backend_contract() {
        let dir = std::env::temp_dir().join(format!("mhd-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&mut DirBackend::create(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_bytes_of_kind() {
        let mut b = MemBackend::new();
        b.put(FileKind::Hook, "h1", &[0u8; 20]).unwrap();
        b.put(FileKind::Hook, "h2", &[0u8; 20]).unwrap();
        assert_eq!(b.bytes_of_kind(FileKind::Hook), 40);
        assert_eq!(b.bytes_of_kind(FileKind::Manifest), 0);
    }

    #[test]
    fn fault_backend_fails_exactly_once() {
        let mut b = FaultBackend::new(MemBackend::new(), 1);
        b.put(FileKind::Hook, "a", b"x").unwrap(); // op 0: ok
        assert!(matches!(b.put(FileKind::Hook, "b", b"x"), Err(StoreError::Io(_)))); // op 1
        b.put(FileKind::Hook, "c", b"x").unwrap(); // op 2: ok again
        assert_eq!(b.ops(), 3);
        // The failed op must not have mutated state.
        assert!(!b.exists(FileKind::Hook, "b"));
    }
}
