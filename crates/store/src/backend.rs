//! Object storage backends.
//!
//! A [`Backend`] is a flat object store with four namespaces, one per
//! metadata [`FileKind`]. [`MemBackend`] keeps everything in RAM (the
//! default for experiments — the paper's numbers are counts and ratios, not
//! device latencies), while [`DirBackend`] lays the same objects out as
//! real files in a directory tree, mirroring the paper's "user space of the
//! Ext3 file system" prototypes. [`FaultBackend`] wraps another backend and
//! fails a chosen operation, for failure-injection tests.
//!
//! # Durability
//!
//! MHD's defining invariant is that only Manifest files are ever rewritten
//! (HHR) while DiskChunks and Hooks stay immutable, so the manifest rewrite
//! is the one place a crash or short write can corrupt a store.
//! [`DirBackend`] therefore never writes an object in place: every `put`
//! and `update` lands in a hidden `.*.tmp` sibling and is atomically
//! renamed over the target. The [`Durability`] level controls what happens
//! around that rename:
//!
//! * [`Durability::None`] — tmp + rename only (atomic against torn writes,
//!   no fsync, no intent records; fastest, for tests and benches).
//! * [`Durability::Rename`] — additionally records a write-ahead *intent*
//!   file under `root/intent/` before every overwrite, removed once the
//!   rename commits. [`DirBackend::recover`] uses leftover intents and tmp
//!   files to detect and roll back a rewrite that was in flight at crash
//!   time.
//! * [`Durability::Fsync`] — additionally fsyncs the tmp file before the
//!   rename and the parent directory after it, so a committed object
//!   survives power loss, not just process death.

use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::{StoreError, StoreResult};

/// The four metadata file categories of the paper's system (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FileKind {
    /// Container of non-duplicate data bytes.
    DiskChunk,
    /// DiskChunkManifest: hash sequence describing one DiskChunk.
    Manifest,
    /// Sampled hash value pointing at one Manifest.
    Hook,
    /// Per-input-file reconstruction recipe.
    FileManifest,
}

impl FileKind {
    /// Directory name used by [`DirBackend`].
    pub fn dir_name(&self) -> &'static str {
        match self {
            FileKind::DiskChunk => "chunks",
            FileKind::Manifest => "manifests",
            FileKind::Hook => "hooks",
            FileKind::FileManifest => "file_manifests",
        }
    }

    /// All categories, for iteration in reports.
    pub const ALL: [FileKind; 4] =
        [FileKind::DiskChunk, FileKind::Manifest, FileKind::Hook, FileKind::FileManifest];

    /// The order in which pending writes must reach disk so that a crash
    /// between any two operations leaves no dangling reference: Manifests
    /// reference DiskChunks, Hooks reference Manifests, FileManifests
    /// reference DiskChunks. Flushing in this order means every object on
    /// disk only ever points at objects that are also on disk.
    pub const FLUSH_ORDER: [FileKind; 4] =
        [FileKind::DiskChunk, FileKind::Manifest, FileKind::Hook, FileKind::FileManifest];
}

/// How hard [`DirBackend`] tries to make each mutation durable. See the
/// module docs for what each level guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// tmp + atomic rename, nothing else.
    None,
    /// tmp + rename with write-ahead intent records for overwrites.
    #[default]
    Rename,
    /// Like `Rename`, plus fsync of the object before the rename and of
    /// the parent directory after it (and after deletes).
    Fsync,
}

impl Durability {
    /// Parses a CLI-style level name (`none`, `rename`, `fsync`).
    pub fn parse(s: &str) -> Option<Durability> {
        match s {
            "none" => Some(Durability::None),
            "rename" => Some(Durability::Rename),
            "fsync" => Some(Durability::Fsync),
            _ => None,
        }
    }

    /// The CLI-style level name.
    pub fn name(&self) -> &'static str {
        match self {
            Durability::None => "none",
            Durability::Rename => "rename",
            Durability::Fsync => "fsync",
        }
    }
}

/// Outcome of a [`Backend::recover`] pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Torn or orphaned `.*.tmp` files removed (writes that never
    /// committed; the target object still holds its previous content).
    pub tmp_files_removed: usize,
    /// Write-ahead intent records cleared. Each one marks an overwrite
    /// that was in flight when the store was last open; thanks to the
    /// atomic rename the target holds either the old or the new bytes, so
    /// clearing the intent completes the rollback (tmp removed) or the
    /// commit (rename already done).
    pub intents_resolved: usize,
}

impl RecoveryReport {
    /// True when the store was already clean (nothing was in flight).
    pub fn is_clean(&self) -> bool {
        self.tmp_files_removed == 0 && self.intents_resolved == 0
    }
}

/// A flat object store. `put` creates (a new inode), `update` rewrites an
/// existing object in place, `get`/`get_range` read.
///
/// DiskChunks and Hooks are never updated by the engines — that invariant
/// lives in the typed stores layered on top, not here.
pub trait Backend {
    /// Creates a new object. Fails with [`StoreError::AlreadyExists`] if the
    /// name is taken.
    fn put(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()>;

    /// Rewrites an existing object. Fails with [`StoreError::NotFound`] if
    /// absent.
    fn update(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()>;

    /// Reads a whole object.
    fn get(&mut self, kind: FileKind, name: &str) -> StoreResult<Bytes>;

    /// Reads `len` bytes at `offset`.
    fn get_range(
        &mut self,
        kind: FileKind,
        name: &str,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes>;

    /// Object size in bytes, or `NotFound`.
    fn size_of(&mut self, kind: FileKind, name: &str) -> StoreResult<u64>;

    /// Existence check without error plumbing.
    fn exists(&mut self, kind: FileKind, name: &str) -> bool;

    /// Number of objects of `kind` (== inode count for that category).
    fn count(&mut self, kind: FileKind) -> u64;

    /// Names of all objects of `kind`, sorted (deterministic iteration for
    /// reports and restore).
    fn list(&mut self, kind: FileKind) -> Vec<String>;

    /// Deletes an object (garbage collection). Fails with
    /// [`StoreError::NotFound`] if absent.
    fn delete(&mut self, kind: FileKind, name: &str) -> StoreResult<()>;

    /// Makes every buffered mutation visible and durable (to the backend's
    /// configured [`Durability`]). A no-op for write-through backends.
    fn flush(&mut self) -> StoreResult<()> {
        Ok(())
    }

    /// Detects and rolls back mutations that were in flight when the store
    /// was last open (torn tmp files, unresolved overwrite intents). A
    /// no-op for backends without crash state.
    fn recover(&mut self) -> StoreResult<RecoveryReport> {
        Ok(RecoveryReport::default())
    }
}

/// In-memory backend: a `BTreeMap` per [`FileKind`].
#[derive(Default)]
pub struct MemBackend {
    maps: [BTreeMap<String, Bytes>; 4],
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    fn map(&self, kind: FileKind) -> &BTreeMap<String, Bytes> {
        &self.maps[kind as usize]
    }

    fn map_mut(&mut self, kind: FileKind) -> &mut BTreeMap<String, Bytes> {
        &mut self.maps[kind as usize]
    }

    /// Total bytes stored in a category (used by ledger cross-checks).
    pub fn bytes_of_kind(&self, kind: FileKind) -> u64 {
        self.map(kind).values().map(|v| v.len() as u64).sum()
    }
}

impl Backend for MemBackend {
    fn put(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        let map = self.map_mut(kind);
        if map.contains_key(name) {
            return Err(StoreError::AlreadyExists { kind, name: name.to_string() });
        }
        map.insert(name.to_string(), Bytes::copy_from_slice(data));
        Ok(())
    }

    fn update(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        let map = self.map_mut(kind);
        match map.get_mut(name) {
            Some(slot) => {
                *slot = Bytes::copy_from_slice(data);
                Ok(())
            }
            None => Err(StoreError::NotFound { kind, name: name.to_string() }),
        }
    }

    fn get(&mut self, kind: FileKind, name: &str) -> StoreResult<Bytes> {
        self.map(kind)
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound { kind, name: name.to_string() })
    }

    fn get_range(
        &mut self,
        kind: FileKind,
        name: &str,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes> {
        let obj = self
            .map(kind)
            .get(name)
            .ok_or_else(|| StoreError::NotFound { kind, name: name.to_string() })?;
        let end = offset.checked_add(len).filter(|&e| e <= obj.len() as u64).ok_or(
            StoreError::OutOfRange { name: name.to_string(), offset, len, size: obj.len() as u64 },
        )?;
        Ok(obj.slice(offset as usize..end as usize))
    }

    fn size_of(&mut self, kind: FileKind, name: &str) -> StoreResult<u64> {
        self.map(kind)
            .get(name)
            .map(|v| v.len() as u64)
            .ok_or_else(|| StoreError::NotFound { kind, name: name.to_string() })
    }

    fn exists(&mut self, kind: FileKind, name: &str) -> bool {
        self.map(kind).contains_key(name)
    }

    fn count(&mut self, kind: FileKind) -> u64 {
        self.map(kind).len() as u64
    }

    fn list(&mut self, kind: FileKind) -> Vec<String> {
        self.map(kind).keys().cloned().collect()
    }

    fn delete(&mut self, kind: FileKind, name: &str) -> StoreResult<()> {
        self.map_mut(kind)
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::NotFound { kind, name: name.to_string() })
    }
}

/// Replaces path separators so object names map to single file names.
///
/// This is the canonical mapping from logical object names (which may
/// contain `/`, e.g. FileManifest recipe names like `m0/d0/file`) to the
/// flat per-kind directory namespace the directory backends store them
/// in. [`Backend::list`] returns names in *sanitised* form; `get`/`put`
/// sanitise again, so either form addresses the same object. Exported so
/// multi-tenant layers (the daemon) can compute tenant prefixes in the
/// same namespace the listings use.
pub fn safe_name(name: &str) -> String {
    name.chars().map(|c| if c == '/' || c == '\\' { '_' } else { c }).collect()
}

/// The directory holding write-ahead intent records.
pub(crate) fn intent_dir(root: &Path) -> PathBuf {
    root.join("intent")
}

pub(crate) fn io_at(op: &'static str, path: &Path, source: std::io::Error) -> StoreError {
    StoreError::IoAt { op, path: path.display().to_string(), source }
}

pub(crate) fn fsync_dir(dir: &Path) -> StoreResult<()> {
    let f = std::fs::File::open(dir).map_err(|e| io_at("open dir", dir, e))?;
    f.sync_all().map_err(|e| io_at("fsync dir", dir, e))
}

/// Directory-tree backend: `root/{chunks,manifests,hooks,file_manifests}/`
/// plus `root/intent/` for write-ahead overwrite records.
///
/// Object names become file names (names used by the substrate are always
/// hex strings or sanitised paths, so no escaping is needed beyond `/`
/// replacement). Temporary files are hidden (`.*.tmp`) and never reported
/// by [`Backend::list`]/[`Backend::count`].
pub struct DirBackend {
    root: PathBuf,
    durability: Durability,
    /// Physical file writes performed (fault-injection bookkeeping).
    writes: u64,
    /// Test-only: the n-th physical write is torn half-way and fails.
    short_write_at: Option<u64>,
}

impl DirBackend {
    /// Creates the directory layout under `root` with the default
    /// [`Durability::Rename`] level.
    pub fn create(root: impl Into<PathBuf>) -> StoreResult<Self> {
        Self::create_with(root, Durability::default())
    }

    /// Creates the directory layout under `root` with an explicit
    /// durability level.
    pub fn create_with(root: impl Into<PathBuf>, durability: Durability) -> StoreResult<Self> {
        let root = root.into();
        for kind in FileKind::ALL {
            let dir = root.join(kind.dir_name());
            std::fs::create_dir_all(&dir).map_err(|e| io_at("create dir", &dir, e))?;
        }
        let intents = intent_dir(&root);
        std::fs::create_dir_all(&intents).map_err(|e| io_at("create dir", &intents, e))?;
        Ok(DirBackend { root, durability, writes: 0, short_write_at: None })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured durability level.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Fault injection for crash tests: the `nth` physical file write
    /// (0-based, counted across puts and updates) writes only half its
    /// bytes and then fails, simulating a crash mid-write. One-shot.
    pub fn fault_short_write_at(&mut self, nth: u64) {
        self.short_write_at = Some(self.writes + nth);
    }

    /// Physical file writes performed so far.
    pub fn physical_writes(&self) -> u64 {
        self.writes
    }

    fn path(&self, kind: FileKind, name: &str) -> PathBuf {
        self.root.join(kind.dir_name()).join(safe_name(name))
    }

    fn tmp_path(&self, kind: FileKind, name: &str) -> PathBuf {
        self.root.join(kind.dir_name()).join(format!(".{}.tmp", safe_name(name)))
    }

    fn intent_path(&self, kind: FileKind, name: &str) -> PathBuf {
        intent_dir(&self.root).join(format!("{}__{}", kind.dir_name(), safe_name(name)))
    }

    /// Writes `data` to `path`, honouring the short-write fault hook.
    fn write_file(&mut self, path: &Path, data: &[u8]) -> StoreResult<()> {
        let n = self.writes;
        self.writes += 1;
        let mut f = std::fs::File::create(path).map_err(|e| io_at("create", path, e))?;
        if self.short_write_at == Some(n) {
            self.short_write_at = None;
            let _ = f.write_all(&data[..data.len() / 2]);
            let _ = f.sync_all();
            return Err(StoreError::Io(std::io::Error::other(format!(
                "injected short write at {}",
                path.display()
            ))));
        }
        f.write_all(data).map_err(|e| io_at("write", path, e))?;
        if self.durability == Durability::Fsync {
            f.sync_all().map_err(|e| io_at("fsync", path, e))?;
        }
        Ok(())
    }

    /// The atomic commit path shared by `put` and `update`: write the
    /// hidden tmp sibling, then rename it over the target.
    fn commit(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        let tmp = self.tmp_path(kind, name);
        let target = self.path(kind, name);
        self.write_file(&tmp, data)?;
        std::fs::rename(&tmp, &target).map_err(|e| io_at("rename", &target, e))?;
        if self.durability == Durability::Fsync {
            fsync_dir(&self.root.join(kind.dir_name()))?;
        }
        Ok(())
    }
}

impl Backend for DirBackend {
    fn put(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        if self.path(kind, name).exists() {
            return Err(StoreError::AlreadyExists { kind, name: name.to_string() });
        }
        self.commit(kind, name, data)
    }

    fn update(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        if !self.path(kind, name).exists() {
            return Err(StoreError::NotFound { kind, name: name.to_string() });
        }
        // Write-ahead intent: recovery knows an overwrite was in flight
        // and can clear the torn tmp file it may have left behind.
        let intent = (self.durability != Durability::None).then(|| self.intent_path(kind, name));
        if let Some(intent) = &intent {
            std::fs::write(intent, name.as_bytes())
                .map_err(|e| io_at("write intent", intent, e))?;
        }
        let result = self.commit(kind, name, data);
        if let Some(intent) = &intent {
            if result.is_ok() {
                std::fs::remove_file(intent).map_err(|e| io_at("clear intent", intent, e))?;
            }
        }
        result
    }

    fn get(&mut self, kind: FileKind, name: &str) -> StoreResult<Bytes> {
        let path = self.path(kind, name);
        match std::fs::read(&path) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound { kind, name: name.to_string() })
            }
            Err(e) => Err(io_at("read", &path, e)),
        }
    }

    fn get_range(
        &mut self,
        kind: FileKind,
        name: &str,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes> {
        let path = self.path(kind, name);
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound { kind, name: name.to_string() })
            }
            Err(e) => return Err(io_at("open", &path, e)),
        };
        let size = file.metadata().map_err(|e| io_at("stat", &path, e))?.len();
        if offset.checked_add(len).is_none_or(|e| e > size) {
            return Err(StoreError::OutOfRange { name: name.to_string(), offset, len, size });
        }
        file.seek(SeekFrom::Start(offset)).map_err(|e| io_at("seek", &path, e))?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf).map_err(|e| io_at("read", &path, e))?;
        Ok(Bytes::from(buf))
    }

    fn size_of(&mut self, kind: FileKind, name: &str) -> StoreResult<u64> {
        let path = self.path(kind, name);
        match std::fs::metadata(&path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound { kind, name: name.to_string() })
            }
            Err(e) => Err(io_at("stat", &path, e)),
        }
    }

    fn exists(&mut self, kind: FileKind, name: &str) -> bool {
        self.path(kind, name).exists()
    }

    fn count(&mut self, kind: FileKind) -> u64 {
        std::fs::read_dir(self.root.join(kind.dir_name()))
            .map(|d| {
                d.filter(|e| {
                    e.as_ref()
                        .ok()
                        .is_some_and(|e| !e.file_name().to_string_lossy().starts_with('.'))
                })
                .count() as u64
            })
            .unwrap_or(0)
    }

    fn list(&mut self, kind: FileKind) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(self.root.join(kind.dir_name()))
            .map(|d| {
                d.filter_map(|e| e.ok().and_then(|e| e.file_name().into_string().ok()))
                    .filter(|n| !n.starts_with('.'))
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }

    fn delete(&mut self, kind: FileKind, name: &str) -> StoreResult<()> {
        let path = self.path(kind, name);
        match std::fs::remove_file(&path) {
            Ok(()) => {
                if self.durability == Durability::Fsync {
                    fsync_dir(&self.root.join(kind.dir_name()))?;
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound { kind, name: name.to_string() })
            }
            Err(e) => Err(io_at("remove", &path, e)),
        }
    }

    fn recover(&mut self) -> StoreResult<RecoveryReport> {
        let mut report = RecoveryReport::default();
        // Torn or orphaned tmp files: the rename never happened, so the
        // target still holds the pre-write content — removing the tmp is
        // the rollback.
        for kind in FileKind::ALL {
            let dir = self.root.join(kind.dir_name());
            let entries = match std::fs::read_dir(&dir) {
                Ok(e) => e,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(io_at("read dir", &dir, e)),
            };
            for entry in entries.filter_map(|e| e.ok()) {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with('.') && name.ends_with(".tmp") {
                    let path = entry.path();
                    std::fs::remove_file(&path).map_err(|e| io_at("remove tmp", &path, e))?;
                    report.tmp_files_removed += 1;
                }
            }
        }
        // Intent records: the overwrite either committed (rename done; the
        // target holds the new bytes) or rolled back above — either way
        // the store is consistent and the intent is resolved.
        let intents = intent_dir(&self.root);
        if intents.exists() {
            let entries =
                std::fs::read_dir(&intents).map_err(|e| io_at("read dir", &intents, e))?;
            for entry in entries.filter_map(|e| e.ok()) {
                let path = entry.path();
                std::fs::remove_file(&path).map_err(|e| io_at("clear intent", &path, e))?;
                report.intents_resolved += 1;
            }
        }
        if !report.is_clean() {
            mhd_obs::counter!("store.recoveries").inc();
        }
        Ok(report)
    }
}

/// Which backend operations a [`FaultPoint`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultOp {
    /// Every counted operation (reads, writes and deletes) — the legacy
    /// behaviour of [`FaultBackend::new`].
    #[default]
    Any,
    /// `get` / `get_range` only.
    Read,
    /// `put` / `update` only.
    Write,
    /// `delete` only.
    Delete,
}

/// Selects which operation of a [`FaultBackend`] fails: the `fail_at`-th
/// (0-based) operation matching `op` and (optionally) `kind`.
#[derive(Debug, Clone, Copy)]
pub struct FaultPoint {
    /// Operation class filter.
    pub op: FaultOp,
    /// Restrict to one object category (`None` = all).
    pub kind: Option<FileKind>,
    /// Index among matching operations that fails.
    pub fail_at: u64,
}

impl FaultPoint {
    /// A fault at the `fail_at`-th operation of any class (legacy
    /// semantics).
    pub fn any(fail_at: u64) -> Self {
        FaultPoint { op: FaultOp::Any, kind: None, fail_at }
    }

    /// A fault at the `fail_at`-th write (`put`/`update`), optionally
    /// restricted to one [`FileKind`] — e.g. the n-th Manifest rewrite.
    pub fn write(kind: Option<FileKind>, fail_at: u64) -> Self {
        FaultPoint { op: FaultOp::Write, kind, fail_at }
    }

    /// A fault at the `fail_at`-th read, optionally restricted to one
    /// [`FileKind`].
    pub fn read(kind: Option<FileKind>, fail_at: u64) -> Self {
        FaultPoint { op: FaultOp::Read, kind, fail_at }
    }

    /// A fault point that never fires: the matching-operation counter
    /// cannot reach `u64::MAX`. Lets a fault layer sit permanently in a
    /// backend stack (e.g. a daemon's) and be armed only by tests.
    pub fn never() -> Self {
        FaultPoint::any(u64::MAX)
    }

    fn matches(&self, op: FaultOp, kind: FileKind) -> bool {
        (self.op == FaultOp::Any || self.op == op)
            && (self.kind.is_none() || self.kind == Some(kind))
    }
}

/// Failure-injection wrapper: the operation selected by a [`FaultPoint`]
/// returns an injected I/O error; everything else passes through. Faults
/// fire *before* the inner operation runs, modelling a crash at an
/// operation boundary (the inner backend is never half-mutated).
pub struct FaultBackend<B> {
    inner: B,
    ops: u64,
    matching: u64,
    point: FaultPoint,
}

impl<B: Backend> FaultBackend<B> {
    /// Wraps `inner`; the operation with index `fail_at` (counted over
    /// reads, writes and deletes alike) fails.
    pub fn new(inner: B, fail_at: u64) -> Self {
        Self::with_point(inner, FaultPoint::any(fail_at))
    }

    /// Wraps `inner` with an explicit fault point.
    pub fn with_point(inner: B, point: FaultPoint) -> Self {
        FaultBackend { inner, ops: 0, matching: 0, point }
    }

    /// Operations performed so far (reads + writes + deletes).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Operations so far that matched the fault point's filters.
    pub fn matching_ops(&self) -> u64 {
        self.matching
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Read access to the inner backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutable access to the inner backend.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Re-arms the wrapper with a new fault point and resets the
    /// matching-operation counter, so a long-lived stack can schedule a
    /// fault well after construction (and disarm it again with
    /// [`FaultPoint::never`]).
    pub fn arm(&mut self, point: FaultPoint) {
        self.matching = 0;
        self.point = point;
    }

    fn tick(&mut self, op: FaultOp, kind: FileKind) -> StoreResult<()> {
        self.ops += 1;
        if !self.point.matches(op, kind) {
            return Ok(());
        }
        let n = self.matching;
        self.matching += 1;
        if n == self.point.fail_at {
            Err(StoreError::Io(std::io::Error::other("injected fault")))
        } else {
            Ok(())
        }
    }
}

impl<B: Backend> Backend for FaultBackend<B> {
    fn put(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        self.tick(FaultOp::Write, kind)?;
        self.inner.put(kind, name, data)
    }
    fn update(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        self.tick(FaultOp::Write, kind)?;
        self.inner.update(kind, name, data)
    }
    fn get(&mut self, kind: FileKind, name: &str) -> StoreResult<Bytes> {
        self.tick(FaultOp::Read, kind)?;
        self.inner.get(kind, name)
    }
    fn get_range(
        &mut self,
        kind: FileKind,
        name: &str,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes> {
        self.tick(FaultOp::Read, kind)?;
        self.inner.get_range(kind, name, offset, len)
    }
    fn size_of(&mut self, kind: FileKind, name: &str) -> StoreResult<u64> {
        self.inner.size_of(kind, name)
    }
    fn exists(&mut self, kind: FileKind, name: &str) -> bool {
        self.inner.exists(kind, name)
    }
    fn count(&mut self, kind: FileKind) -> u64 {
        self.inner.count(kind)
    }
    fn list(&mut self, kind: FileKind) -> Vec<String> {
        self.inner.list(kind)
    }
    fn delete(&mut self, kind: FileKind, name: &str) -> StoreResult<()> {
        self.tick(FaultOp::Delete, kind)?;
        self.inner.delete(kind, name)
    }
    fn flush(&mut self) -> StoreResult<()> {
        self.inner.flush()
    }
    fn recover(&mut self) -> StoreResult<RecoveryReport> {
        self.inner.recover()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn exercise(backend: &mut dyn Backend) {
        backend.put(FileKind::DiskChunk, "a", b"hello world").unwrap();
        assert!(matches!(
            backend.put(FileKind::DiskChunk, "a", b"x"),
            Err(StoreError::AlreadyExists { .. })
        ));
        assert_eq!(&backend.get(FileKind::DiskChunk, "a").unwrap()[..], b"hello world");
        assert_eq!(&backend.get_range(FileKind::DiskChunk, "a", 6, 5).unwrap()[..], b"world");
        assert!(matches!(
            backend.get_range(FileKind::DiskChunk, "a", 6, 6),
            Err(StoreError::OutOfRange { .. })
        ));
        assert_eq!(backend.size_of(FileKind::DiskChunk, "a").unwrap(), 11);
        assert!(backend.exists(FileKind::DiskChunk, "a"));
        assert!(!backend.exists(FileKind::Manifest, "a"));
        assert_eq!(backend.count(FileKind::DiskChunk), 1);
        assert_eq!(backend.count(FileKind::Hook), 0);

        backend.update(FileKind::DiskChunk, "a", b"rewritten").unwrap();
        assert_eq!(&backend.get(FileKind::DiskChunk, "a").unwrap()[..], b"rewritten");
        assert!(matches!(
            backend.update(FileKind::DiskChunk, "missing", b"x"),
            Err(StoreError::NotFound { .. })
        ));
        assert!(matches!(
            backend.get(FileKind::DiskChunk, "missing"),
            Err(StoreError::NotFound { .. })
        ));

        backend.put(FileKind::DiskChunk, "b", b"second").unwrap();
        assert_eq!(backend.list(FileKind::DiskChunk), vec!["a".to_string(), "b".to_string()]);

        backend.delete(FileKind::DiskChunk, "a").unwrap();
        assert!(!backend.exists(FileKind::DiskChunk, "a"));
        assert!(matches!(
            backend.delete(FileKind::DiskChunk, "a"),
            Err(StoreError::NotFound { .. })
        ));
        assert_eq!(backend.count(FileKind::DiskChunk), 1);
        backend.flush().unwrap();
        assert!(backend.recover().unwrap().is_clean());
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mhd-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mem_backend_contract() {
        exercise(&mut MemBackend::new());
    }

    #[test]
    fn dir_backend_contract() {
        for durability in [Durability::None, Durability::Rename, Durability::Fsync] {
            let dir = temp_dir(&format!("contract-{}", durability.name()));
            exercise(&mut DirBackend::create_with(&dir, durability).unwrap());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn mem_bytes_of_kind() {
        let mut b = MemBackend::new();
        b.put(FileKind::Hook, "h1", &[0u8; 20]).unwrap();
        b.put(FileKind::Hook, "h2", &[0u8; 20]).unwrap();
        assert_eq!(b.bytes_of_kind(FileKind::Hook), 40);
        assert_eq!(b.bytes_of_kind(FileKind::Manifest), 0);
    }

    #[test]
    fn fault_backend_fails_exactly_once() {
        let mut b = FaultBackend::new(MemBackend::new(), 1);
        b.put(FileKind::Hook, "a", b"x").unwrap(); // op 0: ok
        assert!(matches!(b.put(FileKind::Hook, "b", b"x"), Err(StoreError::Io(_)))); // op 1
        b.put(FileKind::Hook, "c", b"x").unwrap(); // op 2: ok again
        assert_eq!(b.ops(), 3);
        // The failed op must not have mutated state.
        assert!(!b.exists(FileKind::Hook, "b"));
    }

    #[test]
    fn fault_point_targets_writes_of_one_kind() {
        let point = FaultPoint::write(Some(FileKind::Manifest), 1);
        let mut b = FaultBackend::with_point(MemBackend::new(), point);
        // Reads and other kinds never trip the fault.
        b.put(FileKind::Hook, "h", b"x").unwrap();
        let _ = b.get(FileKind::Hook, "h").unwrap();
        b.put(FileKind::Manifest, "0", b"m0").unwrap(); // manifest write 0: ok
        let _ = b.get(FileKind::Manifest, "0").unwrap();
        assert!(matches!(
            b.update(FileKind::Manifest, "0", b"m0-v2"), // manifest write 1: fault
            Err(StoreError::Io(_))
        ));
        assert_eq!(&b.get(FileKind::Manifest, "0").unwrap()[..], b"m0", "old content intact");
        assert_eq!(b.matching_ops(), 2);
    }

    #[test]
    fn fault_point_targets_reads() {
        let mut b = FaultBackend::with_point(MemBackend::new(), FaultPoint::read(None, 0));
        b.put(FileKind::DiskChunk, "c", b"data").unwrap();
        assert!(matches!(b.get(FileKind::DiskChunk, "c"), Err(StoreError::Io(_))));
        assert_eq!(&b.get(FileKind::DiskChunk, "c").unwrap()[..], b"data");
    }

    #[test]
    fn torn_update_preserves_old_content_and_recovers() {
        let dir = temp_dir("torn");
        let mut b = DirBackend::create_with(&dir, Durability::Rename).unwrap();
        b.put(FileKind::Manifest, "0", b"manifest v1, intact").unwrap();
        // Kill the next physical write half-way: the rewrite must not
        // reach the target file.
        b.fault_short_write_at(0);
        let err = b.update(FileKind::Manifest, "0", b"manifest v2, much longer payload");
        assert!(matches!(err, Err(StoreError::Io(_))));
        assert_eq!(
            &b.get(FileKind::Manifest, "0").unwrap()[..],
            b"manifest v1, intact",
            "in-place content untouched by torn rewrite"
        );
        // The torn tmp and the unresolved intent are visible to recovery…
        let report = b.recover().unwrap();
        assert_eq!(report.tmp_files_removed, 1);
        assert_eq!(report.intents_resolved, 1);
        // …and a second pass is clean.
        assert!(b.recover().unwrap().is_clean());
        assert_eq!(b.list(FileKind::Manifest), vec!["0".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_put_leaves_no_object() {
        let dir = temp_dir("torn-put");
        let mut b = DirBackend::create_with(&dir, Durability::Fsync).unwrap();
        b.fault_short_write_at(0);
        assert!(b.put(FileKind::DiskChunk, "c0", &[7u8; 4096]).is_err());
        assert!(!b.exists(FileKind::DiskChunk, "c0"));
        assert_eq!(b.count(FileKind::DiskChunk), 0, "tmp files are not objects");
        assert_eq!(b.recover().unwrap().tmp_files_removed, 1);
        // The name is reusable after recovery.
        b.put(FileKind::DiskChunk, "c0", &[7u8; 4096]).unwrap();
        assert_eq!(b.size_of(FileKind::DiskChunk, "c0").unwrap(), 4096);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_parse_round_trips() {
        for d in [Durability::None, Durability::Rename, Durability::Fsync] {
            assert_eq!(Durability::parse(d.name()), Some(d));
        }
        assert_eq!(Durability::parse("paranoid"), None);
    }
}
