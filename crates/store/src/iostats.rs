//! Disk-access accounting mirroring Table II of the paper.

use serde::{Deserialize, Serialize};

/// Counts of logical disk accesses, in the categories of the paper's
/// Table II ("Disk Accessing Times Comparison").
///
/// Every counter is incremented by the typed stores when the corresponding
/// backend operation happens, so for a given run the struct *is* the
/// measured version of the table row. The paper compares access counts, not
/// bytes per access ("the I/O overhead is compared on the basis of the
/// number of I/Os required, without considering the amount of data accessed
/// in each I/O", §IV) — we do the same.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    /// DiskChunk writes ("Chunk Output Times").
    pub chunk_output: u64,
    /// DiskChunk byte reloads ("Chunk Input Times"): in MHD these are the
    /// HHR byte-comparison reloads, at most 2 per duplicate slice.
    pub chunk_input: u64,
    /// Hook file creations ("Hook Output Times").
    pub hook_output: u64,
    /// On-disk Hook lookups ("Hook Input Times"): probes that reached the
    /// disk, i.e. were not filtered by the Bloom filter or RAM cache.
    pub hook_input: u64,
    /// Manifest writes and write-backs ("Manifest Output Times").
    pub manifest_output: u64,
    /// Manifest loads into RAM ("Manifest Input Times").
    pub manifest_input: u64,
    /// Index queries issued at big-chunk granularity
    /// ("Big Chunk Query Times", Bimodal/SubChunk only).
    pub big_chunk_query: u64,
    /// Index queries issued at small-chunk granularity
    /// ("Small Chunk Query Times").
    pub small_chunk_query: u64,
    /// Queries answered negatively by the in-RAM Bloom filter (these never
    /// reach the disk; counted to quantify the filter's effect).
    pub bloom_suppressed: u64,
    /// Queries answered by a Manifest already resident in the RAM cache.
    pub cache_hits: u64,
}

impl IoStats {
    /// Total disk accesses, counting every query category as a disk access
    /// (the paper's "Summary without Bloom Filter" row): all I/O counters
    /// plus the queries the Bloom filter had suppressed.
    pub fn total_without_bloom(&self) -> u64 {
        self.total_with_bloom() + self.bloom_suppressed
    }

    /// Total disk accesses actually performed, with the Bloom filter
    /// suppressing negative lookups (the paper's "Summary with Bloom
    /// Filter" row).
    pub fn total_with_bloom(&self) -> u64 {
        self.chunk_output
            + self.chunk_input
            + self.hook_output
            + self.hook_input
            + self.manifest_output
            + self.manifest_input
            + self.big_chunk_query
            + self.small_chunk_query
    }

    /// Manifest loads (the paper's Table V metric).
    pub fn manifest_loads(&self) -> u64 {
        self.manifest_input
    }

    /// HHR chunk-byte reloads (the extra cost plotted in Fig. 10(b)).
    pub fn hhr_reloads(&self) -> u64 {
        self.chunk_input
    }

    /// Element-wise sum of two stat sets.
    pub fn merge(&self, other: &IoStats) -> IoStats {
        IoStats {
            chunk_output: self.chunk_output + other.chunk_output,
            chunk_input: self.chunk_input + other.chunk_input,
            hook_output: self.hook_output + other.hook_output,
            hook_input: self.hook_input + other.hook_input,
            manifest_output: self.manifest_output + other.manifest_output,
            manifest_input: self.manifest_input + other.manifest_input,
            big_chunk_query: self.big_chunk_query + other.big_chunk_query,
            small_chunk_query: self.small_chunk_query + other.small_chunk_query,
            bloom_suppressed: self.bloom_suppressed + other.bloom_suppressed,
            cache_hits: self.cache_hits + other.cache_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = IoStats {
            chunk_output: 1,
            chunk_input: 2,
            hook_output: 3,
            hook_input: 4,
            manifest_output: 5,
            manifest_input: 6,
            big_chunk_query: 7,
            small_chunk_query: 8,
            bloom_suppressed: 100,
            cache_hits: 50,
        };
        assert_eq!(s.total_with_bloom(), 36);
        assert_eq!(s.total_without_bloom(), 136);
        assert_eq!(s.manifest_loads(), 6);
        assert_eq!(s.hhr_reloads(), 2);
    }

    #[test]
    fn merge_is_elementwise() {
        let a = IoStats { chunk_output: 1, cache_hits: 2, ..Default::default() };
        let b = IoStats { chunk_output: 10, hook_input: 5, ..Default::default() };
        let m = a.merge(&b);
        assert_eq!(m.chunk_output, 11);
        assert_eq!(m.hook_input, 5);
        assert_eq!(m.cache_hits, 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(IoStats::default().total_without_bloom(), 0);
    }
}
