//! Batched, crash-safe directory backend.
//!
//! [`BatchedDirBackend`] wraps the same on-disk layout as
//! [`DirBackend`](crate::DirBackend) but decouples the dedup hot loop from
//! storage latency: `put`/`update` land in an in-memory pending overlay and
//! are committed in bounded batches by a small worker pool. Reads always
//! see the overlay first (read-your-writes), so the engines observe exactly
//! the semantics of a write-through backend — the substrate-level
//! [`IoStats`](crate::IoStats) counters and therefore every dedup ratio are
//! unchanged by construction.
//!
//! # Crash ordering
//!
//! A batch flush drains the overlay one [`FileKind`] at a time in
//! [`FileKind::FLUSH_ORDER`] (DiskChunk → Manifest → Hook → FileManifest)
//! with a barrier between kinds. Within the engines' per-file write order
//! this means a crash at any flush boundary leaves no dangling reference:
//! every Manifest on disk points at DiskChunks on disk, every Hook at a
//! Manifest on disk. Each individual object write goes through the same
//! tmp + rename (+ intent, + fsync, per [`Durability`]) path as the plain
//! directory backend, so a crash *inside* a flush is also recoverable.
//!
//! # Read-ahead
//!
//! HHR's backward/forward extension reloads stored chunk bytes through
//! `get_range` in small pieces. With `readahead > 0` the backend pulls the
//! whole DiskChunk on first touch into a small FIFO cache and serves
//! subsequent ranges from memory.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

use bytes::Bytes;

use crate::backend::{fsync_dir, intent_dir, io_at, safe_name};
use crate::sync::{bounded, mpsc, Sender};
use crate::{Backend, DirBackend, Durability, FileKind, RecoveryReport, StoreError, StoreResult};

/// Tuning knobs for [`BatchedDirBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoConfig {
    /// Worker threads servicing write batches (`0` = write inline on the
    /// caller thread; batching and crash ordering still apply).
    pub threads: usize,
    /// Flush automatically once this many mutations are pending.
    pub batch_ops: usize,
    /// Flush automatically once this many payload bytes are pending.
    pub batch_bytes: usize,
    /// DiskChunk read-ahead cache capacity in objects (`0` = off).
    pub readahead: usize,
    /// Durability level for every committed write.
    pub durability: Durability,
}

impl Default for IoConfig {
    fn default() -> Self {
        IoConfig {
            threads: 4,
            batch_ops: 128,
            batch_bytes: 4 << 20,
            readahead: 8,
            durability: Durability::default(),
        }
    }
}

/// A mutation waiting in the overlay. `update: false` is a pending `put`
/// (the target does not exist on disk yet); `update: true` overwrites an
/// object that does.
struct Pending {
    data: Bytes,
    update: bool,
}

/// One write job handed to the worker pool: a contiguous slice of a
/// batch, grouped so channel traffic is per worker, not per object.
struct Job {
    kind: FileKind,
    writes: Vec<(String, Pending)>,
    done: mpsc::Sender<StoreResult<()>>,
}

/// The per-worker committer: replicates the directory backend's atomic
/// tmp + rename (+ intent, + fsync) write path without sharing `&mut`
/// state with the caller.
#[derive(Clone)]
struct JobWriter {
    root: PathBuf,
    durability: Durability,
}

impl JobWriter {
    fn commit(&self, kind: FileKind, name: &str, data: &[u8], update: bool) -> StoreResult<()> {
        let dir = self.root.join(kind.dir_name());
        let safe = safe_name(name);
        let tmp = dir.join(format!(".{safe}.tmp"));
        let target = dir.join(&safe);
        let intent = (update && self.durability != Durability::None)
            .then(|| intent_dir(&self.root).join(format!("{}__{safe}", kind.dir_name())));
        if let Some(intent) = &intent {
            // lint: allow(raw-fs): this IS the commit helper — intent records the overwrite
            std::fs::write(intent, name.as_bytes())
                .map_err(|e| io_at("write intent", intent, e))?;
        }
        // lint: allow(raw-fs): tmp-file leg of the tmp+rename commit sequence
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_at("create", &tmp, e))?;
        f.write_all(data).map_err(|e| io_at("write", &tmp, e))?;
        if self.durability == Durability::Fsync {
            f.sync_all().map_err(|e| io_at("fsync", &tmp, e))?;
        }
        drop(f);
        // lint: allow(raw-fs): the atomic publish rename of the commit sequence
        std::fs::rename(&tmp, &target).map_err(|e| io_at("rename", &target, e))?;
        if self.durability == Durability::Fsync {
            fsync_dir(&dir)?;
        }
        if let Some(intent) = &intent {
            // lint: allow(raw-fs): clearing the intent completes the committed overwrite
            std::fs::remove_file(intent).map_err(|e| io_at("clear intent", intent, e))?;
        }
        Ok(())
    }
}

struct WorkerPool {
    jobs: Sender<Job>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(threads: usize, writer: JobWriter) -> StoreResult<Self> {
        let (tx, rx) = bounded::<Job>(threads * 4);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let rx = rx.clone();
            let writer = writer.clone();
            let handle = std::thread::Builder::new()
                .name(format!("mhd-io-{i}"))
                .spawn(move || {
                    for job in rx.iter() {
                        let mut result = Ok(());
                        for (name, p) in &job.writes {
                            result = writer.commit(job.kind, name, &p.data, p.update);
                            if result.is_err() {
                                break;
                            }
                        }
                        // The flush side may have bailed on an earlier
                        // error; a closed result channel is not a
                        // failure here.
                        let _ = job.done.send(result);
                    }
                })
                .map_err(|e| StoreError::IoAt {
                    op: "spawn I/O worker",
                    path: format!("mhd-io-{i}"),
                    source: e,
                })?;
            handles.push(handle);
        }
        Ok(WorkerPool { jobs: tx, handles })
    }
}

/// A simple FIFO cache of whole DiskChunk payloads for the HHR reload
/// path. (Deliberately not the LRU from `mhd-cache`: that crate depends on
/// this one.)
struct ReadaheadCache {
    capacity: usize,
    entries: Vec<(String, Bytes)>,
}

impl ReadaheadCache {
    fn new(capacity: usize) -> Self {
        ReadaheadCache { capacity, entries: Vec::new() }
    }

    fn get(&self, name: &str) -> Option<&Bytes> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, b)| b)
    }

    fn insert(&mut self, name: String, data: Bytes) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((name, data));
    }

    fn invalidate(&mut self, name: &str) {
        self.entries.retain(|(n, _)| n != name);
    }
}

/// Batched, crash-safe directory backend. See the module docs.
///
/// Dropping the backend flushes pending writes best-effort; call
/// [`Backend::flush`] explicitly (the engines do, in `finish()`) to observe
/// errors.
pub struct BatchedDirBackend {
    inner: DirBackend,
    config: IoConfig,
    pending: [BTreeMap<String, Pending>; 4],
    pending_bytes: usize,
    pool: Option<WorkerPool>,
    readahead: ReadaheadCache,
}

impl BatchedDirBackend {
    /// Creates the store layout under `root` with default [`IoConfig`].
    pub fn create(root: impl Into<PathBuf>) -> StoreResult<Self> {
        Self::create_with(root, IoConfig::default())
    }

    /// Creates the store layout under `root` with explicit tuning.
    pub fn create_with(root: impl Into<PathBuf>, config: IoConfig) -> StoreResult<Self> {
        let inner = DirBackend::create_with(root, config.durability)?;
        let pool = if config.threads > 0 {
            let writer =
                JobWriter { root: inner.root().to_path_buf(), durability: config.durability };
            Some(WorkerPool::spawn(config.threads, writer)?)
        } else {
            None
        };
        Ok(BatchedDirBackend {
            inner,
            config,
            pending: Default::default(),
            pending_bytes: 0,
            pool,
            readahead: ReadaheadCache::new(config.readahead),
        })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        self.inner.root()
    }

    /// The active tuning knobs.
    pub fn config(&self) -> &IoConfig {
        &self.config
    }

    /// Mutations currently queued in the overlay.
    pub fn pending_ops(&self) -> usize {
        self.pending.iter().map(|m| m.len()).sum()
    }

    /// Payload bytes currently queued in the overlay (the quantity the
    /// `batch_bytes` auto-flush threshold is compared against).
    pub fn pending_payload_bytes(&self) -> usize {
        self.pending_bytes
    }

    fn pending_of(&self, kind: FileKind) -> &BTreeMap<String, Pending> {
        &self.pending[kind as usize]
    }

    fn pending_mut(&mut self, kind: FileKind) -> &mut BTreeMap<String, Pending> {
        &mut self.pending[kind as usize]
    }

    fn enqueue(
        &mut self,
        kind: FileKind,
        name: &str,
        data: &[u8],
        update: bool,
    ) -> StoreResult<()> {
        self.pending_bytes += data.len();
        if kind == FileKind::DiskChunk {
            self.readahead.invalidate(name);
        }
        if let Some(replaced) = self
            .pending_mut(kind)
            .insert(name.to_string(), Pending { data: Bytes::copy_from_slice(data), update })
        {
            self.pending_bytes -= replaced.data.len();
        }
        mhd_obs::histogram!("store.io_queue_depth").record(self.pending_ops() as u64);
        if self.pending_ops() >= self.config.batch_ops
            || self.pending_bytes >= self.config.batch_bytes
        {
            self.flush()?;
        }
        Ok(())
    }

    /// Commits one kind's pending mutations, in parallel when a pool
    /// exists. Acts as a barrier: every write of this kind is on disk (to
    /// the configured durability) before this returns.
    fn flush_kind(&mut self, kind: FileKind) -> StoreResult<()> {
        let drained = std::mem::take(self.pending_mut(kind));
        if drained.is_empty() {
            return Ok(());
        }
        // Account the drained bytes here, not in flush(): if an earlier
        // kind's flush fails, later kinds stay in the overlay and
        // pending_bytes must keep matching what the overlay still holds.
        let drained_bytes: usize = drained.values().map(|p| p.data.len()).sum();
        self.pending_bytes -= drained_bytes;
        match &self.pool {
            Some(pool) => {
                // Split the batch into one contiguous group per worker so
                // channel round-trips scale with the pool, not the batch.
                let items: Vec<(String, Pending)> = drained.into_iter().collect();
                let groups = pool.handles.len().min(items.len()).max(1);
                let per_group = items.len().div_ceil(groups);
                let mut items = items;
                let (done_tx, done_rx) = mpsc::channel();
                let mut sent = 0usize;
                while !items.is_empty() {
                    let rest = items.split_off(items.len().min(per_group));
                    let job = Job { kind, writes: items, done: done_tx.clone() };
                    items = rest;
                    pool.jobs.send(job).map_err(|_| {
                        StoreError::Io(std::io::Error::other("I/O worker pool shut down"))
                    })?;
                    sent += 1;
                }
                drop(done_tx);
                let mut first_err = None;
                for _ in 0..sent {
                    match done_rx.recv() {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => first_err = first_err.or(Some(e)),
                        Err(_) => {
                            first_err = first_err.or_else(|| {
                                Some(StoreError::Io(std::io::Error::other(
                                    "I/O worker died mid-batch",
                                )))
                            })
                        }
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            None => {
                for (name, p) in drained {
                    if p.update {
                        self.inner.update(kind, &name, &p.data)?;
                    } else {
                        self.inner.put(kind, &name, &p.data)?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl Backend for BatchedDirBackend {
    fn put(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        if self.pending_of(kind).contains_key(name) || self.inner.exists(kind, name) {
            return Err(StoreError::AlreadyExists { kind, name: name.to_string() });
        }
        self.enqueue(kind, name, data, false)
    }

    fn update(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        // An update over a pending put coalesces into a single put — the
        // object never existed on disk, so there is nothing to overwrite.
        let still_put = match self.pending_of(kind).get(name) {
            Some(p) => !p.update,
            None => {
                if !self.inner.exists(kind, name) {
                    return Err(StoreError::NotFound { kind, name: name.to_string() });
                }
                false
            }
        };
        self.enqueue(kind, name, data, !still_put)
    }

    fn get(&mut self, kind: FileKind, name: &str) -> StoreResult<Bytes> {
        if let Some(p) = self.pending_of(kind).get(name) {
            return Ok(p.data.clone());
        }
        if let Some(cached) = self.readahead.get(name) {
            if kind == FileKind::DiskChunk {
                mhd_obs::counter!("store.readahead_hits").inc();
                return Ok(cached.clone());
            }
        }
        self.inner.get(kind, name)
    }

    fn get_range(
        &mut self,
        kind: FileKind,
        name: &str,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes> {
        let slice = |obj: &Bytes| -> StoreResult<Bytes> {
            let end = offset.checked_add(len).filter(|&e| e <= obj.len() as u64).ok_or(
                StoreError::OutOfRange {
                    name: name.to_string(),
                    offset,
                    len,
                    size: obj.len() as u64,
                },
            )?;
            Ok(obj.slice(offset as usize..end as usize))
        };
        if let Some(p) = self.pending_of(kind).get(name) {
            let data = p.data.clone();
            return slice(&data);
        }
        if kind == FileKind::DiskChunk && self.config.readahead > 0 {
            if let Some(cached) = self.readahead.get(name) {
                mhd_obs::counter!("store.readahead_hits").inc();
                let cached = cached.clone();
                return slice(&cached);
            }
            // Prefetch the whole chunk: HHR's backward/forward extension
            // walks ranges of the same object.
            let whole = self.inner.get(kind, name)?;
            mhd_obs::counter!("store.readahead_fills").inc();
            self.readahead.insert(name.to_string(), whole.clone());
            return slice(&whole);
        }
        self.inner.get_range(kind, name, offset, len)
    }

    fn size_of(&mut self, kind: FileKind, name: &str) -> StoreResult<u64> {
        if let Some(p) = self.pending_of(kind).get(name) {
            return Ok(p.data.len() as u64);
        }
        self.inner.size_of(kind, name)
    }

    fn exists(&mut self, kind: FileKind, name: &str) -> bool {
        self.pending_of(kind).contains_key(name) || self.inner.exists(kind, name)
    }

    fn count(&mut self, kind: FileKind) -> u64 {
        let pending_puts = self.pending_of(kind).values().filter(|p| !p.update).count() as u64;
        self.inner.count(kind) + pending_puts
    }

    fn list(&mut self, kind: FileKind) -> Vec<String> {
        let mut names = self.inner.list(kind);
        for (name, p) in self.pending_of(kind) {
            if !p.update {
                names.push(name.clone());
            }
        }
        names.sort();
        names.dedup();
        names
    }

    fn delete(&mut self, kind: FileKind, name: &str) -> StoreResult<()> {
        if kind == FileKind::DiskChunk {
            self.readahead.invalidate(name);
        }
        let removed = self.pending_mut(kind).remove(name);
        if let Some(p) = &removed {
            // The dropped mutation no longer counts toward the batch
            // threshold (it previously leaked until the next flush reset).
            self.pending_bytes -= p.data.len();
        }
        match removed {
            // A pending put never reached disk: dropping it *is* the delete.
            Some(p) if !p.update => Ok(()),
            // A pending update targets an on-disk object; drop the rewrite
            // and delete the object itself.
            _ => self.inner.delete(kind, name),
        }
    }

    fn flush(&mut self) -> StoreResult<()> {
        let ops = self.pending_ops();
        if ops == 0 {
            return Ok(());
        }
        let bytes = self.pending_bytes;
        let start = Instant::now();
        for kind in FileKind::FLUSH_ORDER {
            self.flush_kind(kind)?;
        }
        mhd_obs::histogram!("store.io_batch_ops").record(ops as u64);
        mhd_obs::histogram!("store.io_batch_bytes").record(bytes as u64);
        mhd_obs::histogram!("store.io_flush_ns").record(start.elapsed().as_nanos() as u64);
        Ok(())
    }

    fn recover(&mut self) -> StoreResult<RecoveryReport> {
        self.inner.recover()
    }
}

impl Drop for BatchedDirBackend {
    fn drop(&mut self) {
        let _ = self.flush();
        if let Some(pool) = self.pool.take() {
            drop(pool.jobs);
            for handle in pool.handles {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::tests::exercise;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mhd-batched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn configs() -> Vec<(&'static str, IoConfig)> {
        vec![
            ("inline", IoConfig { threads: 0, ..IoConfig::default() }),
            ("pooled", IoConfig { threads: 2, ..IoConfig::default() }),
            (
                "tiny-batches",
                IoConfig { threads: 2, batch_ops: 1, batch_bytes: 1, ..IoConfig::default() },
            ),
            (
                "fsync",
                IoConfig { threads: 2, durability: Durability::Fsync, ..IoConfig::default() },
            ),
            ("no-readahead", IoConfig { readahead: 0, ..IoConfig::default() }),
        ]
    }

    #[test]
    fn batched_backend_contract() {
        for (tag, config) in configs() {
            let dir = temp_dir(&format!("contract-{tag}"));
            exercise(&mut BatchedDirBackend::create_with(&dir, config).unwrap());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn overlay_reads_see_pending_writes() {
        let dir = temp_dir("overlay");
        let config = IoConfig { threads: 2, batch_ops: 1000, ..IoConfig::default() };
        let mut b = BatchedDirBackend::create_with(&dir, config).unwrap();
        b.put(FileKind::DiskChunk, "c0", b"pending bytes").unwrap();
        // Nothing flushed yet, but every read path must see the write.
        assert_eq!(&b.get(FileKind::DiskChunk, "c0").unwrap()[..], b"pending bytes");
        assert_eq!(&b.get_range(FileKind::DiskChunk, "c0", 8, 5).unwrap()[..], b"bytes");
        assert_eq!(b.size_of(FileKind::DiskChunk, "c0").unwrap(), 13);
        assert!(b.exists(FileKind::DiskChunk, "c0"));
        assert_eq!(b.count(FileKind::DiskChunk), 1);
        assert_eq!(b.list(FileKind::DiskChunk), vec!["c0".to_string()]);
        // Double-put against the overlay is caught.
        assert!(matches!(
            b.put(FileKind::DiskChunk, "c0", b"x"),
            Err(StoreError::AlreadyExists { .. })
        ));
        b.flush().unwrap();
        assert_eq!(b.pending_ops(), 0);
        assert_eq!(&b.get(FileKind::DiskChunk, "c0").unwrap()[..], b"pending bytes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn update_over_pending_put_coalesces() {
        let dir = temp_dir("coalesce");
        let config = IoConfig { threads: 0, batch_ops: 1000, ..IoConfig::default() };
        let mut b = BatchedDirBackend::create_with(&dir, config).unwrap();
        b.put(FileKind::Manifest, "m", b"v1").unwrap();
        b.update(FileKind::Manifest, "m", b"v2").unwrap();
        b.update(FileKind::Manifest, "m", b"v3").unwrap();
        assert_eq!(b.pending_ops(), 1, "three mutations, one queued write");
        b.flush().unwrap();
        assert_eq!(&b.get(FileKind::Manifest, "m").unwrap()[..], b"v3");
        // No intent was needed: the coalesced write was a fresh put.
        assert!(b.recover().unwrap().is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn update_of_missing_object_fails_before_enqueue() {
        let dir = temp_dir("missing-update");
        let mut b = BatchedDirBackend::create_with(&dir, IoConfig::default()).unwrap();
        assert!(matches!(
            b.update(FileKind::Manifest, "ghost", b"x"),
            Err(StoreError::NotFound { .. })
        ));
        assert_eq!(b.pending_ops(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_of_pending_put_never_touches_disk() {
        let dir = temp_dir("delete-pending");
        let config = IoConfig { threads: 0, batch_ops: 1000, ..IoConfig::default() };
        let mut b = BatchedDirBackend::create_with(&dir, config).unwrap();
        b.put(FileKind::Hook, "h", b"x").unwrap();
        b.delete(FileKind::Hook, "h").unwrap();
        assert!(!b.exists(FileKind::Hook, "h"));
        b.flush().unwrap();
        assert_eq!(b.count(FileKind::Hook), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_flush_on_batch_threshold() {
        let dir = temp_dir("auto-flush");
        let config = IoConfig { threads: 2, batch_ops: 4, ..IoConfig::default() };
        let mut b = BatchedDirBackend::create_with(&dir, config).unwrap();
        for i in 0..4 {
            b.put(FileKind::DiskChunk, &format!("c{i}"), &[i as u8; 64]).unwrap();
        }
        assert_eq!(b.pending_ops(), 0, "threshold crossed, batch committed");
        // The objects are really on disk, not just in the overlay.
        let mut plain = DirBackend::create(b.root()).unwrap();
        assert_eq!(plain.count(FileKind::DiskChunk), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn readahead_serves_ranges_from_one_fill() {
        let dir = temp_dir("readahead");
        let config = IoConfig { threads: 0, readahead: 4, ..IoConfig::default() };
        let mut b = BatchedDirBackend::create_with(&dir, config).unwrap();
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        b.put(FileKind::DiskChunk, "c", &payload).unwrap();
        b.flush().unwrap();
        for offset in [0u64, 100, 2048, 4000] {
            let got = b.get_range(FileKind::DiskChunk, "c", offset, 96).unwrap();
            assert_eq!(&got[..], &payload[offset as usize..offset as usize + 96]);
        }
        assert!(matches!(
            b.get_range(FileKind::DiskChunk, "c", 4090, 100),
            Err(StoreError::OutOfRange { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn update_of_pending_manifest_never_serves_stale_bytes() {
        // Regression guard for the suspected read-ahead stale-read window:
        // a manifest that is updated while an earlier version is still
        // pending in the overlay must be read back as the newest bytes on
        // every read path, before and after the flush, with the
        // read-ahead cache enabled. (Manifests are never inserted into
        // the read-ahead cache — only DiskChunks are — so the window does
        // not exist; this test pins that down.)
        let dir = temp_dir("stale-manifest");
        let config = IoConfig { threads: 2, batch_ops: 1000, readahead: 4, ..IoConfig::default() };
        let mut b = BatchedDirBackend::create_with(&dir, config).unwrap();
        b.put(FileKind::Manifest, "m", b"manifest v1").unwrap();
        b.flush().unwrap();
        // Warm every cache path with the on-disk v1.
        assert_eq!(&b.get(FileKind::Manifest, "m").unwrap()[..], b"manifest v1");
        assert_eq!(&b.get_range(FileKind::Manifest, "m", 9, 2).unwrap()[..], b"v1");
        // Overwrite while nothing is pending, then again while the first
        // rewrite is still pending in the overlay.
        b.update(FileKind::Manifest, "m", b"manifest v2").unwrap();
        assert_eq!(&b.get(FileKind::Manifest, "m").unwrap()[..], b"manifest v2");
        b.update(FileKind::Manifest, "m", b"manifest v3").unwrap();
        assert_eq!(&b.get(FileKind::Manifest, "m").unwrap()[..], b"manifest v3");
        assert_eq!(&b.get_range(FileKind::Manifest, "m", 9, 2).unwrap()[..], b"v3");
        assert_eq!(b.size_of(FileKind::Manifest, "m").unwrap(), 11);
        b.flush().unwrap();
        assert_eq!(&b.get(FileKind::Manifest, "m").unwrap()[..], b"manifest v3");
        assert_eq!(&b.get_range(FileKind::Manifest, "m", 9, 2).unwrap()[..], b"v3");
        // The same dance on a DiskChunk, which *is* read-ahead cached:
        // the update must invalidate the cached payload.
        b.put(FileKind::DiskChunk, "c", b"chunk v1").unwrap();
        b.flush().unwrap();
        assert_eq!(&b.get_range(FileKind::DiskChunk, "c", 6, 2).unwrap()[..], b"v1"); // fill
        b.update(FileKind::DiskChunk, "c", b"chunk v2").unwrap();
        assert_eq!(&b.get_range(FileKind::DiskChunk, "c", 6, 2).unwrap()[..], b"v2");
        b.flush().unwrap();
        assert_eq!(&b.get_range(FileKind::DiskChunk, "c", 6, 2).unwrap()[..], b"v2");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pending_bytes_accounting_tracks_overlay() {
        // delete() of a pending mutation must release its bytes (they
        // previously leaked until the next flush), and a flush must leave
        // the account at zero.
        let dir = temp_dir("pending-bytes");
        let config = IoConfig { threads: 0, batch_ops: 1000, ..IoConfig::default() };
        let mut b = BatchedDirBackend::create_with(&dir, config).unwrap();
        assert_eq!(b.pending_payload_bytes(), 0);
        b.put(FileKind::DiskChunk, "c0", &[0u8; 100]).unwrap();
        b.put(FileKind::DiskChunk, "c1", &[0u8; 50]).unwrap();
        assert_eq!(b.pending_payload_bytes(), 150);
        b.delete(FileKind::DiskChunk, "c0").unwrap();
        assert_eq!(b.pending_payload_bytes(), 50, "dropped pending put releases its bytes");
        // Replacing a pending mutation accounts the delta, not the sum.
        b.update(FileKind::DiskChunk, "c1", &[0u8; 80]).unwrap();
        assert_eq!(b.pending_payload_bytes(), 80);
        b.flush().unwrap();
        assert_eq!(b.pending_payload_bytes(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_order_is_chunks_before_manifests_before_hooks() {
        // Not a timing test: verify FLUSH_ORDER is what the dangling-
        // reference argument in the module docs relies on.
        assert_eq!(
            FileKind::FLUSH_ORDER,
            [FileKind::DiskChunk, FileKind::Manifest, FileKind::Hook, FileKind::FileManifest]
        );
    }

    #[test]
    fn matches_plain_dir_backend_state() {
        // The same operation sequence through both backends must produce
        // identical on-disk object sets.
        let dir_a = temp_dir("equiv-plain");
        let dir_b = temp_dir("equiv-batched");
        let mut plain = DirBackend::create(&dir_a).unwrap();
        let mut batched = BatchedDirBackend::create_with(
            &dir_b,
            IoConfig { threads: 3, batch_ops: 5, ..IoConfig::default() },
        )
        .unwrap();
        let ops: &mut [&mut dyn Backend] = &mut [&mut plain, &mut batched];
        for b in ops.iter_mut() {
            for i in 0..17 {
                b.put(FileKind::DiskChunk, &format!("c{i}"), &vec![i as u8; 100 + i]).unwrap();
                b.put(FileKind::Manifest, &format!("m{i}"), &[0xAA; 36]).unwrap();
            }
            for i in 0..17 {
                b.update(FileKind::Manifest, &format!("m{i}"), &[0xBB; 72]).unwrap();
            }
            b.delete(FileKind::DiskChunk, "c3").unwrap();
            b.flush().unwrap();
        }
        for kind in FileKind::ALL {
            assert_eq!(plain.list(kind), batched.list(kind), "{kind:?} object sets differ");
            for name in plain.list(kind) {
                assert_eq!(
                    &plain.get(kind, &name).unwrap()[..],
                    &batched.get(kind, &name).unwrap()[..],
                    "{kind:?}/{name} content differs"
                );
            }
        }
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}
