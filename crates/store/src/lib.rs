//! The deduplication storage substrate.
//!
//! The paper's prototypes run "in the user space of the Ext3 file system",
//! with four kinds of hash-addressable files (§III, Fig. 2–3):
//!
//! * **DiskChunks** — containers of non-duplicate data bytes; immutable
//!   once written.
//! * **Manifests** (DiskChunkManifests) — the sequence of hash values
//!   describing the data blocks inside one DiskChunk; the *only* files
//!   updated during deduplication (by HHR).
//! * **Hooks** — sampled hash values, each a tiny file holding the 20-byte
//!   address of the Manifest it belongs to; immutable once written.
//! * **FileManifests** — the per-input-file recipes used to reconstruct the
//!   original files.
//!
//! This crate reproduces that substrate with a pluggable [`Backend`] (an
//! in-memory accounting backend and a real on-disk directory backend), and
//! — because the paper's evaluation is entirely in terms of *counts* —
//! first-class accounting: [`IoStats`] mirrors the disk-access categories of
//! Table II and [`MetadataLedger`] mirrors the inode/byte categories of
//! Table I (256 bytes per inode, 20 bytes per Hook, 36 bytes per Manifest
//! entry plus a one-byte Hook flag in the MHD format, 28 bytes per
//! container group in the SubChunk format). The [`Substrate`] facade ties
//! the three together and is what the engines in `mhd-core` program
//! against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod batched;
mod chunk_store;
mod error;
mod file_manifest;
mod iostats;
mod ledger;
mod manifest;
mod substrate;
pub mod sync;

pub use backend::{
    safe_name, Backend, DirBackend, Durability, FaultBackend, FaultOp, FaultPoint, FileKind,
    MemBackend, RecoveryReport,
};
pub use batched::{BatchedDirBackend, IoConfig};
pub use chunk_store::{DiskChunkBuilder, DiskChunkId};
pub use error::{StoreError, StoreResult};
pub use file_manifest::{Extent, FileManifest, EXTENT_BYTES};
pub use iostats::IoStats;
pub use ledger::{MetadataLedger, INODE_BYTES};
pub use manifest::{Manifest, ManifestEntry, ManifestFormat, ManifestId};
pub use substrate::{Substrate, SubstrateState};
