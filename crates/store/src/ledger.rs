//! Metadata size accounting mirroring Table I of the paper.

use serde::{Deserialize, Serialize};

/// Bytes charged per inode, following the paper's assumption ("each inode
/// costs 256 bytes", §IV).
pub const INODE_BYTES: u64 = 256;

/// Running totals of metadata and data bytes, in the categories of the
/// paper's Table I ("Metadata Size Comparison") plus the FileManifest
/// bytes that Fig. 7(c)/(d) add back in.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetadataLedger {
    /// Inodes holding DiskChunks.
    pub inodes_disk_chunks: u64,
    /// Inodes holding Hooks.
    pub inodes_hooks: u64,
    /// Inodes holding Manifests.
    pub inodes_manifests: u64,
    /// Inodes holding FileManifests.
    pub inodes_file_manifests: u64,
    /// Payload bytes of all Hook files (20 each in the paper's format).
    pub hook_bytes: u64,
    /// Payload bytes of all Manifest files, tracked through updates (HHR
    /// growth adjusts this by the delta).
    pub manifest_bytes: u64,
    /// Payload bytes of all FileManifest files.
    pub file_manifest_bytes: u64,
    /// Non-duplicate data bytes stored in DiskChunks (not metadata; used
    /// for the data-only DER).
    pub stored_data_bytes: u64,
}

impl MetadataLedger {
    /// Total inode count across metadata categories (including DiskChunk
    /// inodes — the paper's Fig. 7(a) counts those too).
    pub fn total_inodes(&self) -> u64 {
        self.inodes_disk_chunks
            + self.inodes_hooks
            + self.inodes_manifests
            + self.inodes_file_manifests
    }

    /// Bytes consumed by inodes at 256 bytes each.
    pub fn inode_bytes(&self) -> u64 {
        self.total_inodes() * INODE_BYTES
    }

    /// Manifest + Hook payload bytes (the paper's Fig. 7(b) metric).
    pub fn manifest_and_hook_bytes(&self) -> u64 {
        self.manifest_bytes + self.hook_bytes
    }

    /// Everything the paper's "Total MetaDataRatio" (Fig. 7(d)) counts:
    /// inode bytes + Hook + Manifest + FileManifest payloads.
    pub fn total_metadata_bytes(&self) -> u64 {
        self.inode_bytes() + self.hook_bytes + self.manifest_bytes + self.file_manifest_bytes
    }

    /// Total on-disk footprint: stored data plus all metadata. The real
    /// DER divides the input size by this.
    pub fn total_output_bytes(&self) -> u64 {
        self.stored_data_bytes + self.total_metadata_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose() {
        let l = MetadataLedger {
            inodes_disk_chunks: 2,
            inodes_hooks: 3,
            inodes_manifests: 1,
            inodes_file_manifests: 4,
            hook_bytes: 60,
            manifest_bytes: 370,
            file_manifest_bytes: 100,
            stored_data_bytes: 10_000,
        };
        assert_eq!(l.total_inodes(), 10);
        assert_eq!(l.inode_bytes(), 2560);
        assert_eq!(l.manifest_and_hook_bytes(), 430);
        assert_eq!(l.total_metadata_bytes(), 2560 + 60 + 370 + 100);
        assert_eq!(l.total_output_bytes(), 10_000 + 3090);
    }
}
