//! The typed storage facade used by all deduplication engines.
//!
//! [`Substrate`] owns a [`Backend`] plus the two accounting structures and
//! exposes exactly the operations the paper's system performs, each
//! incrementing the corresponding [`IoStats`] counter and
//! [`MetadataLedger`] category:
//!
//! | operation | Table II counter | Table I category |
//! |---|---|---|
//! | [`Substrate::write_disk_chunk`] | Chunk Output | DiskChunk inode, stored data bytes |
//! | [`Substrate::read_chunk_range`] | Chunk Input | — |
//! | [`Substrate::write_hook`] | Hook Output | Hook inode + 20 bytes |
//! | [`Substrate::lookup_hook`] | Hook Input | — |
//! | [`Substrate::write_manifest`] | Manifest Output | Manifest inode + entry bytes |
//! | [`Substrate::update_manifest`] | Manifest Output | entry byte delta |
//! | [`Substrate::load_manifest`] | Manifest Input | — |
//! | [`Substrate::write_file_manifest`] | — (identical across algorithms) | FileManifest inode + entry bytes |
//!
//! DiskChunks and Hooks are immutable here by construction: no update
//! method exists for them, enforcing the paper's "the DiskChunk and the
//! Hook files that have been written to disk will not be further modified".

use bytes::Bytes;
use mhd_hash::{ChunkHash, FxHashMap};
use serde::{Deserialize, Serialize};

use crate::backend::{Backend, FileKind};
use crate::chunk_store::{DiskChunkBuilder, DiskChunkId};
use crate::file_manifest::FileManifest;
use crate::iostats::IoStats;
use crate::ledger::MetadataLedger;
use crate::manifest::{Manifest, ManifestId};
use crate::StoreResult;

/// The typed storage facade. See the module docs for the accounting map.
pub struct Substrate<B: Backend> {
    backend: B,
    stats: IoStats,
    ledger: MetadataLedger,
    next_chunk_id: u64,
    next_manifest_id: u64,
    /// Size of each manifest as currently stored, so updates adjust the
    /// ledger by the delta.
    manifest_sizes: FxHashMap<ManifestId, u64>,
    /// Content hash recorded per sealed DiskChunk (hash-addressability).
    chunk_hashes: FxHashMap<DiskChunkId, ChunkHash>,
}

impl<B: Backend> Substrate<B> {
    /// Wraps a backend.
    pub fn new(backend: B) -> Self {
        Substrate {
            backend,
            stats: IoStats::default(),
            ledger: MetadataLedger::default(),
            next_chunk_id: 0,
            next_manifest_id: 0,
            manifest_sizes: FxHashMap::default(),
            chunk_hashes: FxHashMap::default(),
        }
    }

    /// The disk-access counters accumulated so far.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Mutable access for engine-level counters (query accounting).
    pub fn stats_mut(&mut self) -> &mut IoStats {
        &mut self.stats
    }

    /// The metadata byte/inode ledger accumulated so far.
    pub fn ledger(&self) -> &MetadataLedger {
        &self.ledger
    }

    /// Direct backend access (tests and restore).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Makes every buffered backend mutation visible and durable. Engines
    /// call this at `finish()` and at every commit point (GC, compaction),
    /// so a batched backend never holds committed state only in memory.
    pub fn flush(&mut self) -> StoreResult<()> {
        self.backend.flush()
    }

    /// Runs the backend's crash-recovery pass (torn tmp files, unresolved
    /// overwrite intents). Call before reading a store that may have been
    /// interrupted.
    pub fn recover(&mut self) -> StoreResult<crate::RecoveryReport> {
        self.backend.recover()
    }

    // ----- DiskChunks --------------------------------------------------

    /// Allocates the identity for a new DiskChunk under construction.
    pub fn new_disk_chunk(&mut self) -> DiskChunkBuilder {
        let id = DiskChunkId(self.next_chunk_id);
        self.next_chunk_id += 1;
        DiskChunkBuilder::new(id)
    }

    /// Seals a builder and writes the container.
    ///
    /// Empty builders are dropped silently (a fully-duplicate file produces
    /// no DiskChunk) and return `false`.
    pub fn write_disk_chunk(&mut self, builder: DiskChunkBuilder) -> StoreResult<bool> {
        if builder.is_empty() {
            return Ok(false);
        }
        let (id, content_hash, data) = builder.seal();
        self.backend.put(FileKind::DiskChunk, &id.name(), &data)?;
        mhd_obs::counter!("store.disk_chunk_writes").inc();
        mhd_obs::histogram!("store.disk_chunk_write_bytes").record(data.len() as u64);
        self.stats.chunk_output += 1;
        self.ledger.inodes_disk_chunks += 1;
        self.ledger.stored_data_bytes += data.len() as u64;
        self.chunk_hashes.insert(id, content_hash);
        Ok(true)
    }

    /// Reserves `n` consecutive DiskChunk ids and returns the first.
    ///
    /// Two-phase commits build objects in a staging substrate under a
    /// private id range, then reserve a real range here (under the store
    /// lock) and splice the staged objects in with
    /// [`Substrate::splice_disk_chunk`]. Unused ids in the range are
    /// simply gaps — ids are never recycled anyway.
    pub fn reserve_chunk_ids(&mut self, n: u64) -> u64 {
        let base = self.next_chunk_id;
        self.next_chunk_id += n;
        base
    }

    /// Reserves `n` consecutive Manifest ids and returns the first (the
    /// manifest analogue of [`Substrate::reserve_chunk_ids`]).
    pub fn reserve_manifest_ids(&mut self, n: u64) -> u64 {
        let base = self.next_manifest_id;
        self.next_manifest_id += n;
        base
    }

    /// Writes an already-sealed DiskChunk payload under a previously
    /// reserved id (the publish half of a two-phase commit: the bytes and
    /// their content hash were produced by a staging substrate). Accounts
    /// exactly like [`Substrate::write_disk_chunk`].
    pub fn splice_disk_chunk(
        &mut self,
        id: DiskChunkId,
        data: &[u8],
        content_hash: ChunkHash,
    ) -> StoreResult<()> {
        debug_assert!(id.0 < self.next_chunk_id, "splice into an unreserved chunk id");
        self.backend.put(FileKind::DiskChunk, &id.name(), data)?;
        mhd_obs::counter!("store.disk_chunk_writes").inc();
        mhd_obs::histogram!("store.disk_chunk_write_bytes").record(data.len() as u64);
        self.stats.chunk_output += 1;
        self.ledger.inodes_disk_chunks += 1;
        self.ledger.stored_data_bytes += data.len() as u64;
        self.chunk_hashes.insert(id, content_hash);
        Ok(())
    }

    /// Reads `len` bytes at `offset` from a sealed DiskChunk (an HHR
    /// byte-comparison reload, or a restore read).
    pub fn read_chunk_range(
        &mut self,
        id: DiskChunkId,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes> {
        let data = self.backend.get_range(FileKind::DiskChunk, &id.name(), offset, len)?;
        mhd_obs::counter!("store.disk_chunk_reads").inc();
        mhd_obs::histogram!("store.disk_chunk_read_bytes").record(len);
        self.stats.chunk_input += 1;
        Ok(data)
    }

    /// Size of a sealed DiskChunk (no I/O charged: sizes live in the inode,
    /// which stat-style operations read without a data seek).
    pub fn disk_chunk_len(&mut self, id: DiskChunkId) -> StoreResult<u64> {
        self.backend.size_of(FileKind::DiskChunk, &id.name())
    }

    /// Content hash recorded when `id` was sealed.
    pub fn disk_chunk_hash(&self, id: DiskChunkId) -> Option<ChunkHash> {
        self.chunk_hashes.get(&id).copied()
    }

    // ----- Hooks --------------------------------------------------------

    /// Writes a Hook: a file named by `hash` whose 20-byte payload is the
    /// address of `manifest`.
    ///
    /// Hooks are content-addressed and "mapped to only one Manifest"
    /// (§III): writing a hash that already has a Hook is a no-op (the
    /// first mapping wins) and charges nothing.
    pub fn write_hook(&mut self, hash: ChunkHash, manifest: ManifestId) -> StoreResult<()> {
        if self.backend.exists(FileKind::Hook, &hash.to_hex()) {
            return Ok(());
        }
        let mut payload = [0u8; 20];
        payload[..8].copy_from_slice(&manifest.0.to_le_bytes());
        self.backend.put(FileKind::Hook, &hash.to_hex(), &payload)?;
        mhd_obs::counter!("store.hook_writes").inc();
        self.stats.hook_output += 1;
        self.ledger.inodes_hooks += 1;
        self.ledger.hook_bytes += 20;
        Ok(())
    }

    /// Writes a Hook *occurrence*: SparseIndexing samples hooks from the
    /// raw input (duplicates included), so the same hash can be persisted
    /// once per Manifest it maps to. The object is named `hash-manifest`
    /// and costs an inode + 20 bytes like any other Hook — this is what
    /// makes the SparseIndexing hook inode count the highest in Fig. 7(a).
    pub fn write_hook_occurrence(
        &mut self,
        hash: ChunkHash,
        manifest: ManifestId,
    ) -> StoreResult<()> {
        let mut payload = [0u8; 20];
        payload[..8].copy_from_slice(&manifest.0.to_le_bytes());
        let name = format!("{}-{:016x}", hash.to_hex(), manifest.0);
        self.backend.put(FileKind::Hook, &name, &payload)?;
        self.stats.hook_output += 1;
        self.ledger.inodes_hooks += 1;
        self.ledger.hook_bytes += 20;
        Ok(())
    }

    /// Looks a Hook up on disk. Each call is one disk access whether or not
    /// the Hook exists (a miss still seeks the directory).
    pub fn lookup_hook(&mut self, hash: ChunkHash) -> StoreResult<Option<ManifestId>> {
        let _timer = mhd_obs::span!("store.hook_lookup_ns");
        mhd_obs::counter!("store.hook_reads").inc();
        self.stats.hook_input += 1;
        match self.backend.get(FileKind::Hook, &hash.to_hex()) {
            Ok(payload) if payload.len() == 20 => {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&payload[..8]);
                Ok(Some(ManifestId(u64::from_le_bytes(raw))))
            }
            Ok(_) => Err(crate::StoreError::Corrupt("hook payload must be 20 bytes".into())),
            Err(crate::StoreError::NotFound { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Whether a hook exists, without charging I/O (used by tests).
    pub fn hook_exists(&mut self, hash: ChunkHash) -> bool {
        self.backend.exists(FileKind::Hook, &hash.to_hex())
    }

    // ----- Manifests ----------------------------------------------------

    /// Allocates a fresh Manifest identity.
    pub fn new_manifest_id(&mut self) -> ManifestId {
        let id = ManifestId(self.next_manifest_id);
        self.next_manifest_id += 1;
        id
    }

    /// Writes a new Manifest.
    pub fn write_manifest(&mut self, manifest: &Manifest) -> StoreResult<()> {
        let encoded = manifest.encode();
        self.backend.put(FileKind::Manifest, &manifest.id.name(), &encoded)?;
        mhd_obs::counter!("store.manifest_writes").inc();
        mhd_obs::histogram!("store.manifest_write_bytes").record(encoded.len() as u64);
        self.stats.manifest_output += 1;
        self.ledger.inodes_manifests += 1;
        self.ledger.manifest_bytes += encoded.len() as u64;
        self.manifest_sizes.insert(manifest.id, encoded.len() as u64);
        Ok(())
    }

    /// Rewrites a dirty Manifest (the HHR write-back). No new inode; the
    /// ledger is adjusted by the size delta.
    pub fn update_manifest(&mut self, manifest: &Manifest) -> StoreResult<()> {
        let encoded = manifest.encode();
        self.backend.update(FileKind::Manifest, &manifest.id.name(), &encoded)?;
        mhd_obs::counter!("store.manifest_updates").inc();
        mhd_obs::histogram!("store.manifest_write_bytes").record(encoded.len() as u64);
        self.stats.manifest_output += 1;
        let old =
            self.manifest_sizes.insert(manifest.id, encoded.len() as u64).ok_or_else(|| {
                crate::StoreError::Corrupt(format!(
                    "update_manifest: {:?} was never written through this substrate",
                    manifest.id
                ))
            })?;
        // Saturating: a staging substrate's ledger starts at zero but may
        // rewrite a manifest it only ever loaded from its base view, so
        // the delta can exceed the running total. (Its ledger is a
        // discarded scratch value; durable substrates wrote every
        // manifest they update and never saturate here.)
        self.ledger.manifest_bytes =
            (self.ledger.manifest_bytes + encoded.len() as u64).saturating_sub(old);
        Ok(())
    }

    /// Loads a Manifest from disk into RAM.
    pub fn load_manifest(&mut self, id: ManifestId) -> StoreResult<Manifest> {
        let data = self.backend.get(FileKind::Manifest, &id.name())?;
        mhd_obs::counter!("store.manifest_reads").inc();
        self.stats.manifest_input += 1;
        // A substrate may legitimately update a manifest it only ever
        // loaded (a staging substrate rewriting a shared-store manifest
        // copy-on-write): record the current encoded size so the update's
        // ledger delta has a base.
        self.manifest_sizes.entry(id).or_insert(data.len() as u64);
        Manifest::decode(id, &data)
    }

    /// Whether a Manifest object exists on the backend (no I/O charged).
    pub fn manifest_exists(&mut self, id: ManifestId) -> bool {
        self.backend.exists(FileKind::Manifest, &id.name())
    }

    // ----- FileManifests -------------------------------------------------

    /// Writes the recipe for one input file. FileManifest I/O is identical
    /// across algorithms (paper §IV) and is excluded from the Table II
    /// counters; only bytes and inodes are recorded.
    pub fn write_file_manifest(&mut self, name: &str, fm: &FileManifest) -> StoreResult<()> {
        let encoded = fm.encode();
        self.backend.put(FileKind::FileManifest, name, &encoded)?;
        mhd_obs::counter!("store.file_manifest_writes").inc();
        self.ledger.inodes_file_manifests += 1;
        self.ledger.file_manifest_bytes += encoded.len() as u64;
        Ok(())
    }

    /// Rewrites a file recipe in place (container compaction re-targets
    /// extents). No new inode; ledger adjusts by the size delta.
    pub fn update_file_manifest(&mut self, name: &str, fm: &FileManifest) -> StoreResult<()> {
        let old = self.backend.size_of(FileKind::FileManifest, name)?;
        let encoded = fm.encode();
        self.backend.update(FileKind::FileManifest, name, &encoded)?;
        self.ledger.file_manifest_bytes =
            self.ledger.file_manifest_bytes - old + encoded.len() as u64;
        Ok(())
    }

    /// Creates a DiskChunk directly from bytes (compaction writes the
    /// surviving ranges of an old container into a fresh one).
    pub fn write_disk_chunk_bytes(&mut self, data: &[u8]) -> StoreResult<DiskChunkId> {
        let mut builder = self.new_disk_chunk();
        builder.append(data);
        let id = builder.id();
        self.write_disk_chunk(builder)?;
        Ok(id)
    }

    /// Loads a file recipe (restore path; no Table II counter, as above).
    pub fn load_file_manifest(&mut self, name: &str) -> StoreResult<FileManifest> {
        let data = self.backend.get(FileKind::FileManifest, name)?;
        FileManifest::decode(&data)
    }

    /// Names of all file recipes, sorted.
    pub fn list_file_manifests(&mut self) -> Vec<String> {
        self.backend.list(FileKind::FileManifest)
    }

    // ----- Deletion (garbage collection) ---------------------------------

    /// Deletes a sealed DiskChunk, returning the ledger's accounting of
    /// its data bytes to the pool. Only garbage collection calls this —
    /// engines never delete.
    pub fn delete_disk_chunk(&mut self, id: DiskChunkId) -> StoreResult<()> {
        let len = self.backend.size_of(FileKind::DiskChunk, &id.name())?;
        // lint: allow(immutability): the GC entry point — the one sanctioned chunk deletion
        self.backend.delete(FileKind::DiskChunk, &id.name())?;
        self.ledger.inodes_disk_chunks -= 1;
        self.ledger.stored_data_bytes -= len;
        self.chunk_hashes.remove(&id);
        Ok(())
    }

    /// Deletes a Manifest (garbage collection).
    pub fn delete_manifest(&mut self, id: ManifestId) -> StoreResult<()> {
        let len = self.backend.size_of(FileKind::Manifest, &id.name())?;
        self.backend.delete(FileKind::Manifest, &id.name())?;
        self.ledger.inodes_manifests -= 1;
        self.ledger.manifest_bytes -= len;
        self.manifest_sizes.remove(&id);
        Ok(())
    }

    /// Deletes a Hook by its object name (covers both plain and
    /// occurrence-style hook names).
    pub fn delete_hook_by_name(&mut self, name: &str) -> StoreResult<()> {
        let len = self.backend.size_of(FileKind::Hook, name)?;
        // lint: allow(immutability): the GC entry point — hooks die only with their manifest
        self.backend.delete(FileKind::Hook, name)?;
        self.ledger.inodes_hooks -= 1;
        self.ledger.hook_bytes -= len;
        Ok(())
    }

    /// Deletes a file recipe (stream retirement).
    pub fn delete_file_manifest(&mut self, name: &str) -> StoreResult<()> {
        let len = self.backend.size_of(FileKind::FileManifest, name)?;
        self.backend.delete(FileKind::FileManifest, name)?;
        self.ledger.inodes_file_manifests -= 1;
        self.ledger.file_manifest_bytes -= len;
        Ok(())
    }

    // ----- Concurrency support -------------------------------------------

    /// The next DiskChunk id this substrate would allocate. Chunk ids are
    /// allocated monotonically, so this value is a *watermark*: every chunk
    /// written from now on has `id >= chunk_id_watermark()`. A concurrent
    /// garbage collector that must not sweep chunks written by in-progress
    /// sessions records each session's watermark at registration and skips
    /// every chunk at or above the minimum (see `mhd_core::gc` and the
    /// daemon's session registry).
    pub fn chunk_id_watermark(&self) -> u64 {
        self.next_chunk_id
    }

    /// The next Manifest id this substrate would allocate (the manifest
    /// analogue of [`Substrate::chunk_id_watermark`]).
    pub fn manifest_id_watermark(&self) -> u64 {
        self.next_manifest_id
    }

    /// Raises the id allocators to at least `chunk` / `manifest`.
    ///
    /// After a crash, the persisted session state can be *behind* the
    /// store: a flush may have committed objects whose ids the lost
    /// state never recorded. Re-opening with stale allocators would hand
    /// out ids that collide with objects already on disk, so recovery
    /// scans the on-disk names and raises the floors past the maximum it
    /// finds. Lowering is never allowed — ids are write-once.
    pub fn ensure_id_floor(&mut self, chunk: u64, manifest: u64) {
        self.next_chunk_id = self.next_chunk_id.max(chunk);
        self.next_manifest_id = self.next_manifest_id.max(manifest);
    }

    // ----- Persistence ----------------------------------------------------

    /// Exports the substrate's mutable bookkeeping so a session over a
    /// durable backend (e.g. [`crate::DirBackend`]) can be resumed later.
    pub fn export_state(&self) -> SubstrateState {
        SubstrateState {
            stats: self.stats,
            ledger: self.ledger,
            next_chunk_id: self.next_chunk_id,
            next_manifest_id: self.next_manifest_id,
            manifest_sizes: self.manifest_sizes.iter().map(|(k, v)| (k.0, *v)).collect(),
            chunk_hashes: self.chunk_hashes.iter().map(|(k, v)| (k.0, v.to_hex())).collect(),
        }
    }

    /// Restores bookkeeping exported by [`Substrate::export_state`]. The
    /// backend must be the same store the state was exported from.
    pub fn import_state(&mut self, state: SubstrateState) -> StoreResult<()> {
        self.stats = state.stats;
        self.ledger = state.ledger;
        self.next_chunk_id = state.next_chunk_id;
        self.next_manifest_id = state.next_manifest_id;
        self.manifest_sizes =
            state.manifest_sizes.into_iter().map(|(k, v)| (ManifestId(k), v)).collect();
        self.chunk_hashes = state
            .chunk_hashes
            .into_iter()
            .map(|(k, v)| {
                ChunkHash::from_hex(&v)
                    .map(|h| (DiskChunkId(k), h))
                    .map_err(|e| crate::StoreError::Corrupt(format!("chunk hash: {e}")))
            })
            .collect::<StoreResult<_>>()?;
        Ok(())
    }
}

/// Serialisable snapshot of a [`Substrate`]'s bookkeeping (see
/// [`Substrate::export_state`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubstrateState {
    /// Disk-access counters.
    pub stats: IoStats,
    /// Metadata ledger.
    pub ledger: MetadataLedger,
    /// Next DiskChunk id to allocate.
    pub next_chunk_id: u64,
    /// Next Manifest id to allocate.
    pub next_manifest_id: u64,
    /// Current encoded size per manifest (update deltas need it).
    pub manifest_sizes: Vec<(u64, u64)>,
    /// Content hash per sealed DiskChunk (hex).
    pub chunk_hashes: Vec<(u64, String)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::file_manifest::Extent;
    use crate::manifest::{ManifestEntry, ManifestFormat};
    use mhd_hash::sha1;

    fn substrate() -> Substrate<MemBackend> {
        Substrate::new(MemBackend::new())
    }

    #[test]
    fn disk_chunk_lifecycle_accounts() {
        let mut s = substrate();
        let mut b = s.new_disk_chunk();
        b.append(b"0123456789");
        let id = b.id();
        assert!(s.write_disk_chunk(b).unwrap());
        assert_eq!(s.stats().chunk_output, 1);
        assert_eq!(s.ledger().inodes_disk_chunks, 1);
        assert_eq!(s.ledger().stored_data_bytes, 10);
        assert_eq!(s.disk_chunk_len(id).unwrap(), 10);
        assert_eq!(s.disk_chunk_hash(id), Some(sha1(b"0123456789")));

        let bytes = s.read_chunk_range(id, 2, 3).unwrap();
        assert_eq!(&bytes[..], b"234");
        assert_eq!(s.stats().chunk_input, 1);
    }

    #[test]
    fn empty_disk_chunk_writes_nothing() {
        let mut s = substrate();
        let b = s.new_disk_chunk();
        assert!(!s.write_disk_chunk(b).unwrap());
        assert_eq!(s.stats().chunk_output, 0);
        assert_eq!(s.ledger().inodes_disk_chunks, 0);
    }

    #[test]
    fn hooks_round_trip_and_account() {
        let mut s = substrate();
        let h = sha1(b"hook");
        s.write_hook(h, ManifestId(42)).unwrap();
        assert_eq!(s.ledger().hook_bytes, 20);
        assert_eq!(s.ledger().inodes_hooks, 1);
        assert_eq!(s.lookup_hook(h).unwrap(), Some(ManifestId(42)));
        assert_eq!(s.lookup_hook(sha1(b"other")).unwrap(), None);
        // Both the hit and the miss were disk probes.
        assert_eq!(s.stats().hook_input, 2);
    }

    #[test]
    fn manifest_update_adjusts_ledger_by_delta() {
        let mut s = substrate();
        let id = s.new_manifest_id();
        let mut m = Manifest::new(id, ManifestFormat::HookFlags);
        m.entries.push(ManifestEntry {
            hash: sha1(b"e0"),
            container: DiskChunkId(0),
            offset: 0,
            size: 100,
            is_hook: true,
        });
        s.write_manifest(&m).unwrap();
        let first = s.ledger().manifest_bytes;
        assert_eq!(first, m.encoded_len() as u64);

        // HHR-style growth: one entry becomes three.
        m.entries.push(ManifestEntry {
            hash: sha1(b"e1"),
            container: DiskChunkId(0),
            offset: 100,
            size: 50,
            is_hook: false,
        });
        m.entries.push(ManifestEntry {
            hash: sha1(b"e2"),
            container: DiskChunkId(0),
            offset: 150,
            size: 50,
            is_hook: false,
        });
        s.update_manifest(&m).unwrap();
        assert_eq!(s.ledger().manifest_bytes, m.encoded_len() as u64);
        assert!(s.ledger().manifest_bytes > first);
        assert_eq!(s.ledger().inodes_manifests, 1, "update must not add inodes");
        assert_eq!(s.stats().manifest_output, 2);

        let back = s.load_manifest(id).unwrap();
        assert_eq!(back, m);
        assert_eq!(s.stats().manifest_input, 1);
    }

    #[test]
    fn file_manifest_accounting() {
        let mut s = substrate();
        let mut fm = FileManifest::new();
        fm.push(Extent { container: DiskChunkId(0), offset: 0, len: 10 });
        s.write_file_manifest("stream0/file0", &fm).unwrap();
        assert_eq!(s.ledger().inodes_file_manifests, 1);
        assert_eq!(s.ledger().file_manifest_bytes, fm.encoded_len() as u64);
        assert_eq!(s.load_file_manifest("stream0/file0").unwrap(), fm);
        assert_eq!(s.list_file_manifests(), vec!["stream0/file0".to_string()]);
    }

    #[test]
    fn state_export_import_round_trip() {
        let mut s = substrate();
        let mut b = s.new_disk_chunk();
        b.append(b"payload");
        s.write_disk_chunk(b).unwrap();
        s.write_hook(sha1(b"h"), ManifestId(0)).unwrap();
        let id = s.new_manifest_id();
        let mut m = Manifest::new(id, ManifestFormat::HookFlags);
        m.entries.push(ManifestEntry {
            hash: sha1(b"e"),
            container: DiskChunkId(0),
            offset: 0,
            size: 7,
            is_hook: true,
        });
        s.write_manifest(&m).unwrap();

        let state = s.export_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: crate::SubstrateState = serde_json::from_str(&json).unwrap();

        // Import into a substrate over the same backend contents.
        let mut s2 = Substrate::new(MemBackend::new());
        s2.import_state(back).unwrap();
        assert_eq!(s2.stats(), s.stats());
        assert_eq!(s2.ledger(), s.ledger());
        assert_eq!(s2.new_manifest_id(), ManifestId(1), "id allocation resumes");
        assert_eq!(s2.new_disk_chunk().id(), DiskChunkId(1));
        assert_eq!(s2.disk_chunk_hash(DiskChunkId(0)), Some(sha1(b"payload")));
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let mut s = substrate();
        assert_eq!(s.new_disk_chunk().id(), DiskChunkId(0));
        assert_eq!(s.new_disk_chunk().id(), DiskChunkId(1));
        assert_eq!(s.new_manifest_id(), ManifestId(0));
        assert_eq!(s.new_manifest_id(), ManifestId(1));
    }
}
