//! DiskChunk identifiers and the in-RAM builder for accumulating
//! non-duplicate bytes before they are sealed to the backend.

use mhd_hash::{ChunkHash, Sha1};

/// Identifier of a DiskChunk (dense sequence number; the content hash is
/// recorded alongside at seal time for hash-addressability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskChunkId(pub u64);

impl DiskChunkId {
    /// Object name in the backend namespace.
    pub fn name(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Accumulates the non-duplicate bytes destined for one DiskChunk.
///
/// The paper buffers non-duplicate chunks in RAM and "only merge\[s\] the
/// non-duplicate chunks belonging to one file into one DiskChunk". The
/// builder tracks a running SHA-1 so the container's content address is
/// available at seal time without a second pass.
pub struct DiskChunkBuilder {
    id: DiskChunkId,
    data: Vec<u8>,
    hasher: Sha1,
}

impl DiskChunkBuilder {
    /// Starts an empty container with the given identity.
    pub fn new(id: DiskChunkId) -> Self {
        DiskChunkBuilder { id, data: Vec::new(), hasher: Sha1::new() }
    }

    /// The container's identity.
    pub fn id(&self) -> DiskChunkId {
        self.id
    }

    /// Appends `bytes`, returning the offset they begin at.
    pub fn append(&mut self, bytes: &[u8]) -> u64 {
        let offset = self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        self.hasher.update(bytes);
        offset
    }

    /// Bytes accumulated so far.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read access to the accumulated bytes (HHR byte comparisons may need
    /// data that has not been sealed yet).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Finishes the container, returning `(id, content_hash, bytes)`.
    pub fn seal(self) -> (DiskChunkId, ChunkHash, Vec<u8>) {
        (self.id, self.hasher.finalize(), self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_hash::sha1;

    #[test]
    fn append_returns_offsets_and_seal_hashes_content() {
        let mut b = DiskChunkBuilder::new(DiskChunkId(3));
        assert!(b.is_empty());
        assert_eq!(b.append(b"hello "), 0);
        assert_eq!(b.append(b"world"), 6);
        assert_eq!(b.len(), 11);
        assert_eq!(b.data(), b"hello world");
        let (id, hash, data) = b.seal();
        assert_eq!(id, DiskChunkId(3));
        assert_eq!(data, b"hello world");
        assert_eq!(hash, sha1(b"hello world"));
    }

    #[test]
    fn name_is_stable_hex() {
        assert_eq!(DiskChunkId(255).name(), "00000000000000ff");
    }
}
