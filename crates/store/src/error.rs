//! Substrate error type.

use std::fmt;

use crate::FileKind;

/// Result alias for substrate operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum StoreError {
    /// The named object does not exist.
    NotFound {
        /// Object category.
        kind: FileKind,
        /// Object name.
        name: String,
    },
    /// An object with this name already exists (puts never overwrite;
    /// DiskChunks and Hooks are immutable by design).
    AlreadyExists {
        /// Object category.
        kind: FileKind,
        /// Object name.
        name: String,
    },
    /// A byte range fell outside the object.
    OutOfRange {
        /// Object name.
        name: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual object size.
        size: u64,
    },
    /// Stored bytes failed to decode.
    Corrupt(String),
    /// Underlying I/O failure (directory backend) or injected fault.
    Io(std::io::Error),
    /// An I/O failure with the operation and path that hit it, so a full
    /// disk reports *where* it ran out, not just "No space left on device".
    IoAt {
        /// What the backend was doing (`"write"`, `"rename"`, `"fsync"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound { kind, name } => write!(f, "{kind:?} {name:?} not found"),
            StoreError::AlreadyExists { kind, name } => {
                write!(f, "{kind:?} {name:?} already exists")
            }
            StoreError::OutOfRange { name, offset, len, size } => {
                write!(f, "range {offset}+{len} outside object {name:?} of size {size}")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt object: {msg}"),
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::IoAt { op, path, source } => {
                write!(f, "I/O error: {op} {path}: {source}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::IoAt { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
