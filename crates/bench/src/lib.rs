//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§V).
//!
//! One binary per exhibit (see DESIGN.md §4):
//!
//! | binary | paper exhibit |
//! |---|---|
//! | `table1` | Table I — metadata size: closed-form model vs measured |
//! | `table2` | Table II — disk accesses: closed-form model vs measured |
//! | `fig7` | Fig. 7(a–d) — metadata vs ECS for the four algorithms |
//! | `fig8` | Fig. 8(a–d) — DER vs MetaDataRatio / ThroughputRatio |
//! | `fig9` | Fig. 9(a–b) — BF-MHD at different SD values |
//! | `fig10` | Fig. 10(a–b) — DAD and HHR cost statistics |
//! | `table3` | Table III — RAM for the sparse index |
//! | `table4` | Table IV — Hook+Manifest bytes in BF-MHD |
//! | `table5` | Table V — Manifest-load disk accesses in BF-MHD |
//! | `ablation` | DESIGN.md §5 — MHD design-choice ablations |
//!
//! Every binary accepts `--bytes N` (corpus size, default 256 MiB),
//! `--seed N`, `--sd N` (the scaled sample distance, default 16) and
//! `--out DIR` (JSON results, default `results/`). The paper runs SD ∈
//! {250, 500, 1000} against 1.0 TB; this harness defaults to SD ∈
//! {4, 8, 16} against hundreds of MiB so that the derived structures keep
//! the paper's proportions — `ECS × SD × 5` segments stay well below one
//! backup stream, and SHM still merges up to SD−1 hashes — see
//! EXPERIMENTS.md for the scaling argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

use mhd_core::metrics::{self, DiskModel, Metrics};
use mhd_core::{
    BimodalEngine, CdcEngine, DedupReport, Deduplicator, EngineConfig, FbcEngine, MhdEngine,
    MhdOptions, SparseIndexEngine, SubChunkEngine,
};
use mhd_store::MemBackend;
use mhd_workload::{Corpus, CorpusSpec};
use serde::Serialize;

/// The engines of the paper's evaluation, in its plotting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// BF-MHD (this paper).
    Mhd,
    /// Bimodal.
    Bimodal,
    /// SubChunk.
    SubChunk,
    /// SparseIndexing.
    SparseIndexing,
    /// Flat CDC (Tables I–II only; not plotted in Figs. 7–8).
    Cdc,
    /// Frequency-based chunking (paper §I–II; outside its evaluation —
    /// available for the shootout and ablation comparisons).
    Fbc,
}

impl EngineKind {
    /// The four algorithms plotted in Figs. 7–8.
    pub const FIGURE_SET: [EngineKind; 4] =
        [EngineKind::Mhd, EngineKind::Bimodal, EngineKind::SubChunk, EngineKind::SparseIndexing];

    /// The four algorithms of Tables I–II.
    pub const TABLE_SET: [EngineKind; 4] =
        [EngineKind::Mhd, EngineKind::SubChunk, EngineKind::Bimodal, EngineKind::Cdc];

    /// Label as used in the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Mhd => "BF-MHD",
            EngineKind::Bimodal => "Bimodal",
            EngineKind::SubChunk => "SubChunk",
            EngineKind::SparseIndexing => "SparseIndexing",
            EngineKind::Cdc => "CDC",
            EngineKind::Fbc => "FBC",
        }
    }
}

/// Common command-line options for the experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Corpus size in bytes.
    pub bytes: u64,
    /// Corpus seed.
    pub seed: u64,
    /// Scaled sample distance.
    pub sd: usize,
    /// Output directory for JSON results.
    pub out: PathBuf,
    /// Also dump the `mhd-obs` internal-metrics snapshot (`--internals`).
    pub internals: bool,
    /// Record a structured trace and write it here as Chrome
    /// `trace_event` JSON, plus raw JSONL next to it (`--trace PATH`).
    pub trace: Option<PathBuf>,
    /// Run the trace analyzer on the recorded trace and print + persist
    /// its report (`--analyze`). Implies tracing even without `--trace`.
    pub analyze: bool,
}

impl Cli {
    /// Parses `--bytes`, `--seed`, `--sd`, `--out` from `std::env::args`.
    /// Unknown flags abort with usage help.
    pub fn parse() -> Cli {
        let mut cli = Cli {
            bytes: 256 << 20,
            seed: 42,
            sd: 16,
            out: PathBuf::from("results"),
            internals: false,
            trace: None,
            analyze: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut value = || {
                args.next().unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--bytes" => cli.bytes = parse_size(&value()),
                "--seed" => cli.seed = value().parse().expect("--seed takes an integer"),
                "--sd" => cli.sd = value().parse().expect("--sd takes an integer"),
                "--out" => cli.out = PathBuf::from(value()),
                "--internals" => cli.internals = true,
                "--trace" => cli.trace = Some(PathBuf::from(value())),
                "--analyze" => cli.analyze = true,
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--bytes N[M|G]] [--seed N] [--sd N] [--out DIR] [--internals] [--trace PATH] [--analyze]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; see --help");
                    std::process::exit(2);
                }
            }
        }
        if cli.trace.is_some() || cli.analyze {
            mhd_obs::trace_start(mhd_obs::DEFAULT_TRACE_CAPACITY);
        }
        cli
    }

    /// Generates the corpus for these options.
    pub fn corpus(&self) -> Corpus {
        let spec = CorpusSpec { seed: self.seed, ..CorpusSpec::paper_like(self.bytes) };
        eprintln!(
            "generating corpus: {} machines x {} days, ~{} MiB ...",
            spec.machines,
            spec.snapshots,
            spec.expected_total_bytes() >> 20
        );
        let corpus = Corpus::generate(spec);
        eprintln!(
            "corpus ready: {} streams, {} bytes, ground-truth ideal DER {:.2}, expected DAD {:.0} KiB",
            corpus.snapshots.len(),
            corpus.total_bytes(),
            corpus.stats.ideal_der(),
            corpus.stats.expected_dad() / 1024.0
        );
        corpus
    }

    /// Writes a serialisable result as JSON under the output directory.
    /// I/O failures (full disk, bad permissions) report the path involved
    /// and exit non-zero instead of panicking.
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) {
        if let Err(e) = std::fs::create_dir_all(&self.out) {
            eprintln!("error: create results dir {}: {e}", self.out.display());
            std::process::exit(1);
        }
        let path = self.out.join(name);
        let json = serde_json::to_string_pretty(value).expect("results are serialisable");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: write results to {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    /// With `--internals`, dumps the process-wide `mhd-obs` snapshot —
    /// per-stage timers, cache hit/miss counters, Bloom probe stats, MHD
    /// hook-hit/BME/HHR event counts — as a JSON side-channel next to the
    /// exhibit's results. A no-op without the flag.
    pub fn write_internals(&self, name: &str) {
        if self.internals {
            self.write_json(name, &mhd_obs::snapshot());
        }
    }

    /// With `--trace PATH`, drains the recorded trace and writes it as
    /// Chrome `trace_event` JSON at `PATH` plus raw JSONL at
    /// `PATH.jsonl`. With `--analyze`, additionally runs the trace
    /// analyzer on the drained records, prints its report to stderr and
    /// persists the analysis JSON (next to the trace, or as
    /// `trace_analysis.json` under `--out` when no trace path was
    /// given). A no-op without either flag. Call once, at exhibit end.
    pub fn write_trace(&self) {
        if self.trace.is_none() && !self.analyze {
            return;
        }
        let records = mhd_obs::trace_drain();
        let fail = |what: &str, at: &Path, e: std::io::Error| -> ! {
            eprintln!("error: {what} {}: {e}", at.display());
            std::process::exit(1);
        };
        if let Some(path) = &self.trace {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)
                        .unwrap_or_else(|e| fail("create trace dir", parent, e));
                }
            }
            std::fs::write(path, mhd_obs::trace_to_chrome(&records))
                .unwrap_or_else(|e| fail("write chrome trace to", path, e));
            let jsonl = path.with_extension("jsonl");
            std::fs::write(&jsonl, mhd_obs::trace_to_jsonl(&records))
                .unwrap_or_else(|e| fail("write jsonl trace to", &jsonl, e));
            eprintln!(
                "wrote {} trace events to {} (+ {})",
                records.len(),
                path.display(),
                jsonl.display()
            );
        }
        if self.analyze {
            let opts = mhd_obs::analysis::AnalyzeOptions::default();
            let analysis = mhd_obs::analysis::analyze(&records, &opts);
            eprint!("{}", analysis.render());
            match &self.trace {
                Some(path) => {
                    let out = path.with_extension("analysis.json");
                    let json =
                        serde_json::to_string_pretty(&analysis).expect("analysis is serialisable");
                    std::fs::write(&out, json)
                        .unwrap_or_else(|e| fail("write trace analysis to", &out, e));
                    eprintln!("wrote {}", out.display());
                }
                None => self.write_json("trace_analysis.json", &analysis),
            }
        }
    }
}

/// `"64M"`, `"1G"`, `"1048576"` → bytes.
fn parse_size(s: &str) -> u64 {
    let (num, mult) = match s.as_bytes().last() {
        Some(b'K' | b'k') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'M' | b'm') => (&s[..s.len() - 1], 1u64 << 20),
        Some(b'G' | b'g') => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().expect("--bytes takes e.g. 64M") * mult
}

/// Engine configuration scaled to the corpus, mirroring the paper's setup:
/// the Bloom filter scales with the input (100 MB : 1 TB in the paper) and
/// the Manifest cache stays small relative to the number of manifests.
pub fn scaled_config(ecs: usize, sd: usize, corpus_bytes: u64) -> EngineConfig {
    EngineConfig {
        ecs,
        sd,
        bloom_bytes: ((corpus_bytes / 1024) as usize).max(64 << 10),
        // Small relative to the number of manifests (the paper's 1 TB run
        // cannot keep a day's manifests resident; neither may we).
        cache_manifests: 8,
        chunker: mhd_chunking::ChunkerKind::Rabin,
        mhd: MhdOptions::default(),
    }
}

/// One experiment run: report + derived metrics.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Engine label.
    pub engine: String,
    /// Expected chunk size used.
    pub ecs: usize,
    /// Sample distance used.
    pub sd: usize,
    /// The raw run report.
    pub report: DedupReport,
    /// Derived §V metrics.
    pub metrics: Metrics,
}

/// Runs one engine over the corpus and computes the §V metrics.
///
/// The whole run executes under an `engine=<label>` attribution scope and
/// trace stage, so multi-engine exhibits yield per-engine sub-snapshots
/// (see `Snapshot::scopes`) and per-engine trace lanes.
pub fn run_engine(kind: EngineKind, corpus: &Corpus, config: EngineConfig) -> RunResult {
    let _scope = mhd_obs::scope!("engine={}", kind.label());
    let _stage = mhd_obs::stage(format!("engine={}", kind.label()));
    let report = match kind {
        EngineKind::Mhd => {
            drive(MhdEngine::new(MemBackend::new(), config).expect("config"), corpus)
        }
        EngineKind::Cdc => {
            drive(CdcEngine::new(MemBackend::new(), config).expect("config"), corpus)
        }
        EngineKind::Bimodal => {
            drive(BimodalEngine::new(MemBackend::new(), config).expect("config"), corpus)
        }
        EngineKind::SubChunk => {
            drive(SubChunkEngine::new(MemBackend::new(), config).expect("config"), corpus)
        }
        EngineKind::SparseIndexing => {
            drive(SparseIndexEngine::new(MemBackend::new(), config).expect("config"), corpus)
        }
        EngineKind::Fbc => {
            drive(FbcEngine::new(MemBackend::new(), config).expect("config"), corpus)
        }
    };
    let metrics = metrics::compute(&report, &DiskModel::default());
    RunResult { engine: kind.label().to_string(), ecs: config.ecs, sd: config.sd, report, metrics }
}

fn drive<D: Deduplicator>(mut engine: D, corpus: &Corpus) -> DedupReport {
    for snapshot in &corpus.snapshots {
        engine.process_snapshot(snapshot).expect("in-memory dedup cannot fail");
    }
    engine.finish().expect("finish")
}

/// The ECS sweep of the paper's figures.
pub const ECS_SWEEP: [usize; 5] = [512, 1024, 2048, 4096, 8192];

/// Prints a fixed-width table: header row then formatted rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title}");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(header.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sizes() {
        assert_eq!(parse_size("1024"), 1024);
        assert_eq!(parse_size("64M"), 64 << 20);
        assert_eq!(parse_size("2G"), 2 << 30);
        assert_eq!(parse_size("16k"), 16 << 10);
    }

    #[test]
    fn scaled_config_is_valid() {
        for ecs in ECS_SWEEP {
            scaled_config(ecs, 64, 64 << 20).validate().unwrap();
        }
    }

    #[test]
    fn run_engine_smoke() {
        let corpus = Corpus::generate(CorpusSpec::tiny(99));
        for kind in EngineKind::TABLE_SET {
            let r = run_engine(kind, &corpus, scaled_config(512, 8, corpus.total_bytes()));
            assert_eq!(r.report.input_bytes, corpus.total_bytes(), "{kind:?}");
            assert!(r.metrics.data_only_der >= 1.0, "{kind:?}");
        }
    }
}
