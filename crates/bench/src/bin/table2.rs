//! Table II — "Disk Accessing Times Comparison": the §IV closed-form
//! model (worst case) next to the measured access counters. The measured
//! values sit at or below the model (e.g. MHD chunk reloads ≤ 2L, cache
//! hits replace repeated manifest loads).

use mhd_bench::{print_table, run_engine, scaled_config, Cli, EngineKind};
use mhd_core::analysis::{self, Algorithm, Symbols};
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();
    let config = scaled_config(4096, cli.sd, corpus.total_bytes());

    let runs: Vec<_> =
        EngineKind::TABLE_SET.iter().map(|&k| (k, run_engine(k, &corpus, config))).collect();
    let cdc = &runs.iter().find(|(k, _)| *k == EngineKind::Cdc).expect("cdc ran").1;
    let (n, d) = (cdc.report.chunks_stored, cdc.report.chunks_dup);

    let mut rows = Vec::new();
    let mut js = Vec::new();
    for (kind, run) in &runs {
        let algo = match kind {
            EngineKind::Mhd => Algorithm::Mhd,
            EngineKind::SubChunk => Algorithm::SubChunk,
            EngineKind::Bimodal => Algorithm::Bimodal,
            EngineKind::Cdc => Algorithm::Cdc,
            EngineKind::SparseIndexing | EngineKind::Fbc => unreachable!("not in TABLE_SET"),
        };
        let sym =
            Symbols { n, d, l: run.report.dup_slices, f: run.report.files, sd: cli.sd as u64 };
        let model = analysis::io_model(algo, sym);
        let (sup_small, sup_big) = analysis::bloom_suppressed(algo, sym);
        let stats = &run.report.stats;
        rows.push(vec![
            algo.label().to_string(),
            format!("{}/{}", model.chunk_output, stats.chunk_output),
            format!("{}/{}", model.chunk_input, stats.chunk_input),
            format!("{}/{}", model.hook_output, stats.hook_output),
            format!("{}/{}", model.hook_input, stats.hook_input),
            format!("{}/{}", model.manifest_output, stats.manifest_output),
            format!("{}/{}", model.manifest_input, stats.manifest_input),
            format!("{}/{}", model.big_chunk_query, stats.big_chunk_query),
            format!("{}/{}", model.total_with_bloom(sup_small, sup_big), stats.total_with_bloom()),
        ]);
        js.push(json!({
            "algorithm": algo.label(),
            "symbols": sym,
            "model": model,
            "model_total_with_bloom": model.total_with_bloom(sup_small, sup_big),
            "measured": stats,
            "measured_total_with_bloom": stats.total_with_bloom(),
        }));
    }
    println!("\nsymbols: N={n} D={d} SD={}; each cell is model/measured", cli.sd);
    print_table(
        "Table II: disk accesses — model vs measured (model/measured)",
        &[
            "algorithm",
            "chunk out",
            "chunk in",
            "hook out",
            "hook in",
            "manifest out",
            "manifest in",
            "big query",
            "total (bloom)",
        ],
        &rows,
    );

    cli.write_json("table2.json", &js);
    cli.write_internals("table2_internals.json");
    cli.write_trace();
}
