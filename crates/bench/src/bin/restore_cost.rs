//! Restore-side cost (extension experiment, not in the paper): the paper
//! measures write throughput only ("the deduplication throughput refers
//! to the write throughput", §V), but deduplication fragments files across
//! containers and the read path pays for it. This binary restores the
//! final day's backups under each algorithm and reports fragmentation —
//! recipe extents per file, distinct containers touched, and the disk
//! accesses the restore performed.

use mhd_bench::{print_table, scaled_config, Cli, EngineKind};
use mhd_core::restore;
use mhd_core::{
    BimodalEngine, CdcEngine, Deduplicator, FbcEngine, MhdEngine, SparseIndexEngine, SubChunkEngine,
};
use mhd_store::{MemBackend, Substrate};
use serde_json::json;

/// Restores every file of the last day and returns
/// (extents, containers, accesses, files).
fn restore_last_day(
    substrate: &mut Substrate<MemBackend>,
    corpus: &mhd_workload::Corpus,
) -> (u64, u64, u64, u64) {
    let machines = corpus.spec().machines;
    let last_day = &corpus.snapshots[corpus.snapshots.len() - machines..];
    let before = *substrate.stats();
    let mut extents = 0u64;
    let mut files = 0u64;
    let mut containers = std::collections::BTreeSet::new();
    for snapshot in last_day {
        for file in &snapshot.files {
            let fm = substrate.load_file_manifest(&file.path).expect("recipe");
            extents += fm.entry_count() as u64;
            for e in fm.extents() {
                containers.insert(e.container);
            }
            let restored = restore::restore_file(substrate, &file.path).expect("restore");
            assert_eq!(restored, file.data, "{}", file.path);
            files += 1;
        }
    }
    let accesses = substrate.stats().chunk_input - before.chunk_input;
    (extents, containers.len() as u64, accesses, files)
}

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();
    let config = scaled_config(4096, cli.sd, corpus.total_bytes());

    let mut rows = Vec::new();
    let mut js = Vec::new();
    macro_rules! measure {
        ($kind:expr, $engine:expr) => {{
            eprintln!("restore_cost: {}", $kind.label());
            let mut engine = $engine.expect("config");
            for s in &corpus.snapshots {
                engine.process_snapshot(s).expect("dedup");
            }
            engine.finish().expect("finish");
            let (extents, containers, accesses, files) =
                restore_last_day(engine.substrate_mut(), &corpus);
            rows.push(vec![
                $kind.label().to_string(),
                format!("{:.2}", extents as f64 / files as f64),
                containers.to_string(),
                format!("{:.2}", accesses as f64 / files as f64),
            ]);
            js.push(json!({"engine": $kind.label(), "files": files,
                           "extents_per_file": extents as f64 / files as f64,
                           "containers_touched": containers,
                           "accesses_per_file": accesses as f64 / files as f64}));
        }};
    }

    measure!(EngineKind::Mhd, MhdEngine::new(MemBackend::new(), config));
    measure!(EngineKind::Bimodal, BimodalEngine::new(MemBackend::new(), config));
    measure!(EngineKind::SubChunk, SubChunkEngine::new(MemBackend::new(), config));
    measure!(EngineKind::SparseIndexing, SparseIndexEngine::new(MemBackend::new(), config));
    measure!(EngineKind::Cdc, CdcEngine::new(MemBackend::new(), config));
    measure!(EngineKind::Fbc, FbcEngine::new(MemBackend::new(), config));

    print_table(
        "Restore cost for the final day's backups (extension experiment)",
        &["algorithm", "extents/file", "containers touched", "reads/file"],
        &rows,
    );
    println!("\nlower is better everywhere; restore reads are one access per recipe extent");

    cli.write_json("restore_cost.json", &js);
    cli.write_internals("restore_cost_internals.json");
    cli.write_trace();
}
