//! Concurrent-sessions exhibit (extension experiment, not in the paper):
//! aggregate backup throughput of `mhd serve` as the number of concurrent
//! client sessions grows. Every configuration pushes the *same* corpus
//! through the daemon — machines are partitioned across N clients, each
//! client is its own tenant driving the wire protocol over a Unix socket
//! — so the exhibit isolates what the two-phase commit buys: the dedup
//! pipeline (chunking, hashing, hook probes) runs outside the engine
//! lock on per-session staging substrates, and only the short publish
//! phase serialises, so aggregate MiB/s should *grow* with session count
//! while `chunks_stored` stays within a whisker of the serial run.
//!
//! Two asserted gates back the claim:
//!
//! * dedup equivalence — `chunks_stored` must land within 1% (min 2) of
//!   the 1-session reference: optimistic conflict retries make
//!   concurrent dedup decisions converge on the serial outcome, with the
//!   residue down to commit-order permutation (hook-based dedup is
//!   order-sensitive, so the count drifts a few chunks either way — the
//!   parallel run sometimes dedups strictly *better*); beyond 4 sessions
//!   the slack additionally grows with session count, since each
//!   oversubscribed session that exhausts its retry budget may publish a
//!   few duplicate chunks (correct, just slightly less deduplicated);
//! * scaling (opt-in via `DAEMON_BENCH_REQUIRE_SCALING=1`, set by CI's
//!   smoke stage) — with ≥4 cores, 4-session throughput must be at least
//!   0.9× the 2-session figure, i.e. adding sessions never *costs*
//!   throughput; on smaller boxes, where concurrent pipelines cannot
//!   physically overlap, the gate instead checks the measured Amdahl
//!   number: the serialized splice+persist work must stay under 80% of
//!   commit time at every *multi-session* row (the `publish` column /
//!   `publish_fraction` JSON field, from the daemon's own commit-phase
//!   span timers, excluding time spent queued on the lock; the serial
//!   row is reported but not gated — it has no concurrency to amortize
//!   the fixed per-commit persist cost against).

use std::path::{Path, PathBuf};
use std::time::Instant;

use mhd_bench::{print_table, Cli};
use mhd_daemon::{Client, Daemon, DaemonConfig};
use serde_json::json;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhd-daemon-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Drives one machine's snapshot history through its own client
/// connection, one session per day; returns bytes sent.
fn drive_machine(socket: &Path, tenant: &str, snapshots: &[&mhd_workload::Snapshot]) -> u64 {
    let mut client = Client::connect(socket).expect("connect");
    client.open(tenant).expect("open tenant");
    let mut sent = 0;
    for snapshot in snapshots {
        client.begin(&format!("m{}-d{}", snapshot.machine, snapshot.day)).expect("begin");
        for file in &snapshot.files {
            // Corpus paths are `m<machine>/d<day>/f<index>`; the tenant and
            // day already scope the session, so send the file leaf only.
            let leaf = file.path.rsplit('/').next().expect("nonempty path");
            client.send_file(leaf, &file.data).expect("send");
            sent += file.data.len() as u64;
        }
        client.commit().expect("commit");
    }
    sent
}

/// Replays per configuration; the fastest is reported (best-of-N).
const REPEATS: usize = 3;

/// One measured corpus replay at a given session count.
struct ConfigSample {
    seconds: f64,
    stats: mhd_daemon::DaemonStats,
    pipeline_seconds: f64,
    publish_seconds: f64,
    serialized_seconds: f64,
    publish_fraction: f64,
}

/// Runs one full corpus replay against a fresh daemon with `sessions`
/// concurrent clients, verifies the result (input accounting, probe
/// restore, healthy shutdown), and returns the measured sample.
fn run_config(corpus: &mhd_workload::Corpus, sessions: usize, rep: usize) -> ConfigSample {
    let obs_before = mhd_obs::snapshot();
    let root = temp_root(&format!("s{sessions}-r{rep}"));
    let store_dir = root.join("store");
    let socket = root.join("mhd.sock");
    let daemon = Daemon::open(&store_dir, DaemonConfig::default()).expect("open daemon");
    let store = daemon.store().clone();
    let handle = daemon.spawn(&socket).expect("spawn daemon");

    // Partition machines round-robin across N clients; each client is
    // one tenant and replays its machines' days in backup order.
    let start = Instant::now();
    let workers: Vec<_> = (0..sessions)
        .map(|w| {
            let socket = socket.clone();
            let snapshots: Vec<mhd_workload::Snapshot> =
                corpus.snapshots.iter().filter(|s| s.machine % sessions == w).cloned().collect();
            std::thread::spawn(move || {
                let refs: Vec<&mhd_workload::Snapshot> = snapshots.iter().collect();
                drive_machine(&socket, &format!("client{w}"), &refs)
            })
        })
        .collect();
    let sent: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(sent, corpus.total_bytes(), "clients must replay the whole corpus");

    let stats = store.stats();
    assert_eq!(stats.input_bytes, corpus.total_bytes(), "daemon lost input bytes");

    // Whatever the commit interleaving did to hook placement, restores
    // must stay byte-identical — probe machine 0, day 0.
    let mut admin = Client::connect(&socket).expect("connect admin");
    admin.open("client0").expect("open probe tenant");
    let probe = corpus
        .snapshots
        .iter()
        .find(|s| s.machine == 0 && s.day == 0)
        .expect("corpus has machine 0 day 0");
    for file in &probe.files {
        let leaf = file.path.rsplit('/').next().expect("nonempty path");
        let restored = admin.restore(&format!("m0-d0_{leaf}")).expect("restore probe");
        assert_eq!(restored, file.data, "restore of m0/d0/{leaf} diverged");
    }
    admin.shutdown().expect("shutdown");
    handle.join().expect("serve thread");
    let _ = std::fs::remove_dir_all(&root);

    // Phase occupancy from the daemon's own span timers: how much commit
    // time went to the parallel pipeline vs the serialized splice+persist
    // work. This is the Amdahl number behind the scaling claim, and it
    // is meaningful even on boxes with too few cores to show wall-clock
    // scaling directly. The fraction uses the splice/persist *work*
    // spans, not the publish wrapper span, because the wrapper also
    // counts time queued on the lock — with N sessions that wait is
    // tallied N-fold and would make the fraction grow with concurrency
    // even when the serialized work per commit is unchanged.
    let obs = mhd_obs::snapshot().diff(&obs_before);
    let phase_secs = |name: &str| obs.histogram(name).map_or(0.0, |h| h.sum as f64 / 1e9);
    let pipeline_seconds = phase_secs("daemon.commit_pipeline_ns");
    let publish_seconds = phase_secs("daemon.commit_publish_ns");
    let serialized_seconds =
        phase_secs("daemon.commit_splice_ns") + phase_secs("daemon.commit_persist_ns");
    let publish_fraction = serialized_seconds / (pipeline_seconds + serialized_seconds).max(1e-9);

    ConfigSample {
        seconds,
        stats,
        pipeline_seconds,
        publish_seconds,
        serialized_seconds,
        publish_fraction,
    }
}

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();
    let machines = corpus.spec().machines;
    let input_mib = corpus.total_bytes() as f64 / (1 << 20) as f64;

    let session_counts: Vec<usize> =
        [1usize, 2, 4, 8].into_iter().filter(|&n| n <= machines).collect();

    let mut rows = Vec::new();
    let mut js = Vec::new();
    let mut reference_chunks = None;
    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    let mut publish_fractions: Vec<(usize, f64)> = Vec::new();
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    for &sessions in &session_counts {
        // Each configuration replays the corpus REPEATS times into a
        // fresh store and reports the fastest replay — the standard
        // best-of-N discipline for wall-clock comparisons, since the
        // minimum is the run least polluted by scheduler and page-cache
        // noise. Correctness assertions run on *every* replay.
        let mut best: Option<ConfigSample> = None;
        for rep in 0..REPEATS {
            eprintln!("daemon_bench: {sessions} concurrent session(s), replay {rep}");
            let sample = run_config(&corpus, sessions, rep);

            // Two-phase commits retry on hook-probe conflicts, so
            // concurrent interleavings must land within a whisker of the
            // serial dedup outcome. Two benign mechanisms move the
            // count: (a) partitioning machines across clients permutes
            // stream commit order, and hook-based dedup is
            // order-sensitive — a stream dedups against whichever
            // streams published first, so the count drifts a few chunks
            // in *either* direction (sometimes strictly better than
            // serial); (b) each retry-budget exhaustion may leak a
            // duplicate, which grows with oversubscription. Bound (a) at
            // 1% of the serial count and (b) at one chunk per session
            // beyond 4 — a broken splice or a lost index update leaks
            // duplicates proportional to the shared content, orders of
            // magnitude past this bound.
            let reference = *reference_chunks.get_or_insert(sample.stats.chunks_stored);
            let mut tolerance = (reference / 100).max(2);
            if sessions > 4 {
                tolerance += sessions as u64;
            }
            assert!(
                sample.stats.chunks_stored.abs_diff(reference) <= tolerance,
                "{sessions} sessions: {} chunks stored vs serial {} — dedup diverged \
                 under concurrency",
                sample.stats.chunks_stored,
                reference
            );

            if best.as_ref().is_none_or(|b| sample.seconds < b.seconds) {
                best = Some(sample);
            }
        }
        let sample = best.expect("at least one replay ran");
        let stats = &sample.stats;

        let throughput = input_mib / sample.seconds;
        throughputs.push((sessions, throughput));
        publish_fractions.push((sessions, sample.publish_fraction));
        rows.push(vec![
            sessions.to_string(),
            format!("{:.2}", sample.seconds),
            format!("{throughput:.1}"),
            stats.streams.to_string(),
            format!("{:.1}", stats.stored_bytes as f64 / (1 << 20) as f64),
            format!("{:.0}%", sample.publish_fraction * 100.0),
        ]);
        js.push(json!({
            "sessions": sessions,
            "seconds": sample.seconds,
            "aggregate_mib_s": throughput,
            "streams": stats.streams,
            "chunks_stored": stats.chunks_stored,
            "stored_bytes": stats.stored_bytes,
            "input_bytes": stats.input_bytes,
            "dup_bytes": stats.dup_bytes,
            "pipeline_seconds": sample.pipeline_seconds,
            "publish_seconds": sample.publish_seconds,
            "serialized_seconds": sample.serialized_seconds,
            "publish_fraction": sample.publish_fraction,
            "parallelism": parallelism,
            "repeats": REPEATS,
        }));
    }

    // CI's smoke stage sets this to turn the scaling claim into a hard
    // gate; timings are too noisy for an unconditional assert in local
    // debug runs, so it is opt-in. On boxes with at least four cores the
    // gate is wall-clock: 4-session throughput must reach 0.9× the
    // 2-session figure (slack for scheduler jitter, still catches "the
    // publish lock swallowed the pipeline"). With fewer cores concurrent
    // pipelines cannot overlap, so the gate falls back to the Amdahl
    // number itself: the serialized publish phase must stay a minority of
    // commit time at every session count.
    if std::env::var_os("DAEMON_BENCH_REQUIRE_SCALING").is_some() {
        if parallelism >= 4 {
            let thr = |n: usize| throughputs.iter().find(|(s, _)| *s == n).map(|(_, t)| *t);
            if let (Some(t2), Some(t4)) = (thr(2), thr(4)) {
                assert!(
                    t4 >= t2 * 0.9,
                    "4-session throughput {t4:.2} MiB/s fell below 0.9x the 2-session \
                     figure {t2:.2} MiB/s — commit sharding has regressed"
                );
            }
        } else {
            eprintln!(
                "daemon_bench: only {parallelism} core(s) — gating on publish-phase \
                 occupancy instead of wall-clock scaling"
            );
            // Only multi-session rows are gated: the Amdahl claim is
            // about work that concurrent pipelines can amortize, and the
            // serial row has no concurrency to overlap against — on small
            // smoke corpora its fixed per-commit persist cost (Bloom +
            // id-map sidecar rewrites) legitimately dominates the tiny
            // pipelines without implying the lock-held section regressed.
            for &(sessions, fraction) in &publish_fractions {
                if sessions < 2 {
                    continue;
                }
                assert!(
                    fraction < 0.8,
                    "{sessions} sessions: serialized splice+persist work took {:.0}% of \
                     commit time — the lock-held section is no longer O(metadata)",
                    fraction * 100.0
                );
            }
        }
    }

    print_table(
        "Aggregate daemon backup throughput vs concurrent sessions (extension experiment)",
        &["sessions", "seconds", "MiB/s", "streams", "stored MiB", "publish"],
        &rows,
    );
    println!("\nevery configuration replays the identical corpus; only session concurrency varies");
    println!(
        "publish = share of commit time inside the serialized publish phase \
         ({parallelism} core(s) available)"
    );

    cli.write_json("daemon_bench.json", &js);
    cli.write_internals("daemon_bench_internals.json");
    cli.write_trace();
}
