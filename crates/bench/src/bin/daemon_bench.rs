//! Concurrent-sessions exhibit (extension experiment, not in the paper):
//! aggregate backup throughput of `mhd serve` as the number of concurrent
//! client sessions grows. Every configuration pushes the *same* corpus
//! through the daemon — machines are partitioned across N clients, each
//! client is its own tenant driving the wire protocol over a Unix socket
//! — so the exhibit isolates what session concurrency buys (overlapping
//! protocol parsing, chunking, and hashing) against the shared-engine
//! commit lock that serialises index updates.

use std::path::{Path, PathBuf};
use std::time::Instant;

use mhd_bench::{print_table, Cli};
use mhd_daemon::{Client, Daemon, DaemonConfig};
use serde_json::json;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhd-daemon-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Drives one machine's snapshot history through its own client
/// connection, one session per day; returns bytes sent.
fn drive_machine(socket: &Path, tenant: &str, snapshots: &[&mhd_workload::Snapshot]) -> u64 {
    let mut client = Client::connect(socket).expect("connect");
    client.open(tenant).expect("open tenant");
    let mut sent = 0;
    for snapshot in snapshots {
        client.begin(&format!("m{}-d{}", snapshot.machine, snapshot.day)).expect("begin");
        for file in &snapshot.files {
            // Corpus paths are `m<machine>/d<day>/f<index>`; the tenant and
            // day already scope the session, so send the file leaf only.
            let leaf = file.path.rsplit('/').next().expect("nonempty path");
            client.send_file(leaf, &file.data).expect("send");
            sent += file.data.len() as u64;
        }
        client.commit().expect("commit");
    }
    sent
}

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();
    let machines = corpus.spec().machines;
    let input_mib = corpus.total_bytes() as f64 / (1 << 20) as f64;

    let session_counts: Vec<usize> =
        [1usize, 2, 4, 8].into_iter().filter(|&n| n <= machines).collect();

    let mut rows = Vec::new();
    let mut js = Vec::new();
    let mut reference_stored = None;
    for &sessions in &session_counts {
        eprintln!("daemon_bench: {sessions} concurrent session(s)");
        let root = temp_root(&format!("s{sessions}"));
        let store_dir = root.join("store");
        let socket = root.join("mhd.sock");
        let daemon = Daemon::open(&store_dir, DaemonConfig::default()).expect("open daemon");
        let store = daemon.store().clone();
        let handle = daemon.spawn(&socket).expect("spawn daemon");

        // Partition machines round-robin across N clients; each client is
        // one tenant and replays its machines' days in backup order.
        let start = Instant::now();
        let workers: Vec<_> = (0..sessions)
            .map(|w| {
                let socket = socket.clone();
                let snapshots: Vec<mhd_workload::Snapshot> = corpus
                    .snapshots
                    .iter()
                    .filter(|s| s.machine % sessions == w)
                    .cloned()
                    .collect();
                std::thread::spawn(move || {
                    let refs: Vec<&mhd_workload::Snapshot> = snapshots.iter().collect();
                    drive_machine(&socket, &format!("client{w}"), &refs)
                })
            })
            .collect();
        let sent: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(sent, corpus.total_bytes(), "clients must replay the whole corpus");

        let stats = store.stats();
        assert_eq!(stats.input_bytes, corpus.total_bytes(), "daemon lost input bytes");

        // Whatever the commit interleaving did to hook placement, restores
        // must stay byte-identical — probe machine 0, day 0.
        let mut admin = Client::connect(&socket).expect("connect admin");
        admin.open("client0").expect("open probe tenant");
        let probe = corpus
            .snapshots
            .iter()
            .find(|s| s.machine == 0 && s.day == 0)
            .expect("corpus has machine 0 day 0");
        for file in &probe.files {
            let leaf = file.path.rsplit('/').next().expect("nonempty path");
            let restored = admin.restore(&format!("m0-d0_{leaf}")).expect("restore probe");
            assert_eq!(restored, file.data, "restore of m0/d0/{leaf} diverged");
        }
        admin.shutdown().expect("shutdown");
        handle.join().expect("serve thread");

        // Hysteresis re-chunking is order-sensitive, so concurrent commit
        // interleavings may shift hook placement slightly — but the stored
        // set must stay in the same ballpark as the serial run.
        let reference = *reference_stored.get_or_insert(stats.stored_bytes);
        assert!(
            stats.stored_bytes * 10 < reference * 13 && reference * 10 < stats.stored_bytes * 13,
            "{sessions} sessions: stored {} bytes vs serial {} — dedup regressed under concurrency",
            stats.stored_bytes,
            reference
        );

        let throughput = input_mib / seconds;
        rows.push(vec![
            sessions.to_string(),
            format!("{seconds:.2}"),
            format!("{throughput:.1}"),
            stats.streams.to_string(),
            format!("{:.1}", stats.stored_bytes as f64 / (1 << 20) as f64),
        ]);
        js.push(json!({
            "sessions": sessions,
            "seconds": seconds,
            "aggregate_mib_s": throughput,
            "streams": stats.streams,
            "chunks_stored": stats.chunks_stored,
            "stored_bytes": stats.stored_bytes,
            "input_bytes": stats.input_bytes,
            "dup_bytes": stats.dup_bytes,
        }));
        let _ = std::fs::remove_dir_all(&root);
    }

    print_table(
        "Aggregate daemon backup throughput vs concurrent sessions (extension experiment)",
        &["sessions", "seconds", "MiB/s", "streams", "stored MiB"],
        &rows,
    );
    println!("\nevery configuration replays the identical corpus; only session concurrency varies");

    cli.write_json("daemon_bench.json", &js);
    cli.write_internals("daemon_bench_internals.json");
    cli.write_trace();
}
