//! Table IV — "Byte size for all the Hooks and Manifests in BF-MHD"
//! across the SD × ECS grid (whether they would fit in RAM, §V-C).

use mhd_bench::{print_table, run_engine, scaled_config, Cli, EngineKind};
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();
    let sds = [cli.sd, (cli.sd / 2).max(2), (cli.sd / 4).max(2)];
    let ecs_values = [1024usize, 2048, 4096, 8192];

    let mut rows = Vec::new();
    let mut js = Vec::new();
    for &sd in &sds {
        for ecs in ecs_values {
            eprintln!("table4: BF-MHD @ SD {sd} ECS {ecs}");
            let r =
                run_engine(EngineKind::Mhd, &corpus, scaled_config(ecs, sd, corpus.total_bytes()));
            let bytes = r.report.ledger.manifest_and_hook_bytes();
            let pct = bytes as f64 / r.report.input_bytes as f64 * 100.0;
            rows.push(vec![
                sd.to_string(),
                ecs.to_string(),
                (bytes / 1024).to_string(),
                format!("{pct:.4}%"),
            ]);
            js.push(json!({"sd": sd, "ecs": ecs, "hook_and_manifest_bytes": bytes,
                           "fraction_of_input": pct / 100.0}));
        }
    }
    print_table(
        "Table IV: Hook + Manifest bytes in BF-MHD",
        &["SD", "ECS (B)", "size (KiB)", "% of input"],
        &rows,
    );
    println!("\npaper: 0.007%-0.02% of input; grows as SD shrinks and as ECS shrinks");

    cli.write_json("table4.json", &js);
    cli.write_internals("table4_internals.json");
    cli.write_trace();
}
