//! Chunker shootout (extension experiment, not in the paper): raw
//! cut-point throughput and end-to-end dedup quality for every
//! engine-selectable chunker (`--chunker` on `mhd backup`/`mhd serve`).
//!
//! Two panels:
//!
//! * **scanner throughput** — MiB/s of `cut_points` over the concatenated
//!   corpus bytes, best-of-N. FastCDC appears three times: the calibrated
//!   default (whichever kernel `simd::best_scan` picked for this
//!   machine), the forced SWAR scanner (8 gear positions tested per
//!   branch), and the forced scalar reference — all three byte-identical
//!   by assertion, so the rows are a pure kernel comparison;
//! * **dedup quality** — the Fig 7/8-style BF-MHD run repeated per
//!   chunker: duplicate-elimination ratio, chunks stored, metadata ratio.
//!   After every run the first day of machine 0 is restored and compared
//!   byte-for-byte, so a chunker can never "win" by corrupting restores.
//!
//! Asserted gates:
//!
//! * restore identity per chunker — unconditional;
//! * SWAR/scalar cut-point identity on the corpus bytes — unconditional;
//! * FastCDC (SWAR) throughput ≥ Rabin — opt-in via
//!   `CHUNKER_BENCH_REQUIRE_FASTCDC=1` (set by CI's smoke stage; debug
//!   builds invert the constant folding the release gate relies on).

use std::time::Instant;

use mhd_bench::{print_table, scaled_config, Cli};
use mhd_chunking::{AnyChunker, Chunker, ChunkerKind, FastCdcChunker};
use mhd_core::{restore, Deduplicator, MhdEngine};
use mhd_store::MemBackend;
use serde_json::json;

/// Replays per throughput measurement; the fastest is reported.
const REPEATS: usize = 3;

/// Expected chunk size for both panels (the paper's default ECS).
const ECS: usize = 4096;

/// Best-of-N MiB/s of one cut-point scanner over `data`, plus the cuts it
/// found (returned so callers can sanity-check identity across scanners).
fn measure(data: &[u8], scan: &dyn Fn(&[u8]) -> Vec<usize>) -> (f64, Vec<usize>) {
    let mib = data.len() as f64 / (1 << 20) as f64;
    let mut best = f64::INFINITY;
    let mut cuts = Vec::new();
    for _ in 0..REPEATS {
        let start = Instant::now();
        cuts = scan(data);
        best = best.min(start.elapsed().as_secs_f64());
    }
    (mib / best, cuts)
}

/// One BF-MHD corpus run with the given chunker; returns
/// (dup_fraction, chunks_stored, metadata_ratio) after asserting the
/// machine-0/day-0 restore probe.
fn dedup_quality(corpus: &mhd_workload::Corpus, kind: ChunkerKind, sd: usize) -> (f64, u64, f64) {
    let _scope = mhd_obs::scope!("chunker={}", kind);
    let config = scaled_config(ECS, sd, corpus.total_bytes()).with_chunker(kind);
    let mut engine = MhdEngine::new(MemBackend::new(), config).expect("config");
    for snapshot in &corpus.snapshots {
        engine.process_snapshot(snapshot).expect("in-memory dedup cannot fail");
    }
    let report = engine.finish().expect("finish");

    // Whatever boundaries the chunker cut, restores must be byte-exact.
    let probe = corpus
        .snapshots
        .iter()
        .find(|s| s.machine == 0 && s.day == 0)
        .expect("corpus has machine 0 day 0");
    for file in &probe.files {
        let restored =
            restore::restore_file(engine.substrate_mut(), &file.path).expect("restore probe");
        assert_eq!(restored, file.data, "{kind}: restore of {} diverged", file.path);
    }

    let metrics = mhd_core::metrics::compute(&report, &mhd_core::metrics::DiskModel::default());
    (report.dup_fraction(), report.chunks_stored, metrics.metadata_ratio)
}

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();

    // Scanner input: the corpus bytes themselves (mixed structured /
    // mutated / duplicate content), concatenated like the paper's backup
    // stream, capped so debug runs stay quick.
    const SCAN_CAP: usize = 256 << 20;
    let mut data = Vec::new();
    'fill: for snapshot in &corpus.snapshots {
        for file in &snapshot.files {
            if data.len() + file.data.len() > SCAN_CAP {
                break 'fill;
            }
            data.extend_from_slice(&file.data);
        }
    }
    let input_mib = data.len() as f64 / (1 << 20) as f64;
    eprintln!("chunker_bench: scanning {input_mib:.0} MiB of corpus bytes, ECS {ECS}");

    let mut rows = Vec::new();
    let mut js = Vec::new();
    let mut rabin_mib_s = 0.0f64;
    let mut fastcdc_mib_s = 0.0f64;
    for kind in ChunkerKind::ALL {
        let chunker: AnyChunker = kind.build(ECS).expect("default ECS is buildable");
        let (mib_s, cuts) = measure(&data, &|d| chunker.cut_points(d));
        let mean_chunk = data.len() as f64 / cuts.len().max(1) as f64;
        match kind {
            ChunkerKind::Rabin => rabin_mib_s = mib_s,
            ChunkerKind::FastCdc => fastcdc_mib_s = mib_s,
            _ => {}
        }

        eprintln!("chunker_bench: {kind} dedup-quality run");
        let (dup_fraction, chunks_stored, metadata_ratio) = dedup_quality(&corpus, kind, cli.sd);

        rows.push(vec![
            kind.to_string(),
            format!("{mib_s:.0}"),
            format!("{mean_chunk:.0}"),
            format!("{:.1}%", dup_fraction * 100.0),
            chunks_stored.to_string(),
            format!("{metadata_ratio:.3e}"),
        ]);
        js.push(json!({
            "chunker": kind.to_string(),
            "mib_s": mib_s,
            "chunks": cuts.len(),
            "mean_chunk_bytes": mean_chunk,
            "dup_fraction": dup_fraction,
            "chunks_stored": chunks_stored,
            "metadata_ratio": metadata_ratio,
            "restore_ok": true,
        }));
    }

    // The forced-kernel FastCDC rows: same masks, same gear, only the
    // scan kernel varies. Identity is asserted, so the row trio is a pure
    // kernel comparison; the "fastcdc" row above used whichever kernel
    // calibration selected.
    let fast = FastCdcChunker::with_avg(ECS).expect("default ECS");
    let (scalar_mib_s, scalar_cuts) = measure(&data, &|d| fast.cut_points_scalar(d));
    let (swar_mib_s, swar_cuts) = measure(&data, &|d| fast.cut_points_swar(d));
    assert_eq!(swar_cuts, scalar_cuts, "SWAR and scalar FastCDC diverged on the corpus bytes");
    assert_eq!(
        fast.cut_points(&data),
        scalar_cuts,
        "calibrated FastCDC diverged from the scalar reference on the corpus bytes"
    );
    let mean = format!("{:.0}", data.len() as f64 / scalar_cuts.len().max(1) as f64);
    for (name, mib_s) in [("fastcdc-swar", swar_mib_s), ("fastcdc-scalar", scalar_mib_s)] {
        rows.push(vec![
            name.into(),
            format!("{mib_s:.0}"),
            mean.clone(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        js.push(json!({
            "chunker": name,
            "mib_s": mib_s,
            "chunks": scalar_cuts.len(),
        }));
    }
    js.push(json!({
        "selected_kernel": mhd_chunking::simd::best_scan_name(),
        "swar_speedup_vs_scalar": swar_mib_s / scalar_mib_s.max(1e-9),
    }));

    if std::env::var_os("CHUNKER_BENCH_REQUIRE_FASTCDC").is_some() {
        for (name, mib_s) in [("calibrated", fastcdc_mib_s), ("forced-SWAR", swar_mib_s)] {
            assert!(
                mib_s >= rabin_mib_s,
                "FastCDC ({name}) {mib_s:.0} MiB/s fell below Rabin \
                 {rabin_mib_s:.0} MiB/s — the gear scanner has regressed"
            );
        }
    }

    print_table(
        "Chunker shootout: scanner MiB/s + BF-MHD dedup quality (extension experiment)",
        &["chunker", "MiB/s", "mean chunk", "dup", "chunks stored", "meta ratio"],
        &rows,
    );
    println!("\nevery dedup row replays the identical corpus; only the chunker varies");
    println!(
        "fastcdc auto-selected the {} kernel; fastcdc-swar / fastcdc-scalar force each \
         byte-identical kernel",
        mhd_chunking::simd::best_scan_name()
    );

    cli.write_json("chunker_bench.json", &js);
    cli.write_internals("chunker_bench_internals.json");
    cli.write_trace();
}
