//! Ablations of MHD's design choices (DESIGN.md §5): EdgeHash on/off,
//! bi-directional vs one-directional extension, and the HHR duplicate-
//! region granularity. Each variant runs over the same corpus; the table
//! shows what each mechanism buys.

use mhd_bench::{print_table, run_engine, scaled_config, Cli, EngineKind};
use mhd_core::{HhrDupGranularity, HookIndex, MhdOptions};
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();
    let ecs = 2048;

    let variants: [(&str, MhdOptions); 7] = [
        ("paper default", MhdOptions::default()),
        ("no EdgeHash", MhdOptions { edge_hash: false, ..Default::default() }),
        ("forward-only", MhdOptions { backward_extension: false, ..Default::default() }),
        ("backward-only", MhdOptions { forward_extension: false, ..Default::default() }),
        (
            "no extension",
            MhdOptions {
                backward_extension: false,
                forward_extension: false,
                ..Default::default()
            },
        ),
        (
            "per-chunk HHR dup",
            MhdOptions { hhr_dup: HhrDupGranularity::PerChunk, ..Default::default() },
        ),
        (
            "SI-MHD (sparse hook index)",
            MhdOptions { hook_index: HookIndex::SparseIndex, ..Default::default() },
        ),
    ];

    let mut rows = Vec::new();
    let mut js = Vec::new();
    for (name, opts) in variants {
        eprintln!("ablation: {name}");
        let mut config = scaled_config(ecs, cli.sd, corpus.total_bytes());
        config.mhd = opts;
        let r = run_engine(EngineKind::Mhd, &corpus, config);
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", r.metrics.data_only_der),
            format!("{:.3}", r.metrics.real_der),
            format!("{:.3e}", r.metrics.metadata_ratio),
            r.report.hhr_count.to_string(),
            r.report.stats.hhr_reloads().to_string(),
            r.report.dup_slices.to_string(),
        ]);
        js.push(json!({"variant": name, "options": opts, "metrics": r.metrics,
                       "hhr_count": r.report.hhr_count,
                       "hhr_reloads": r.report.stats.hhr_reloads(),
                       "dup_slices": r.report.dup_slices}));
    }
    print_table(
        "MHD ablations (ECS 2048)",
        &["variant", "data DER", "real DER", "MetaDataRatio", "HHR ops", "reloads", "L"],
        &rows,
    );

    cli.write_json("ablation.json", &js);
    cli.write_internals("ablation_internals.json");
    cli.write_trace();
}
