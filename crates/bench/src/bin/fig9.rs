//! Fig. 9 — BF-MHD at different SD values: (a) real DER vs MetaDataRatio,
//! (b) real DER vs ThroughputRatio. The paper's SD ∈ {1000, 500, 250}
//! scale here to `--sd`, `--sd/2`, `--sd/4` (default 64/32/16; see
//! EXPERIMENTS.md for the scaling argument).

use mhd_bench::{print_table, run_engine, scaled_config, Cli, EngineKind, RunResult, ECS_SWEEP};

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();
    let sds = [cli.sd, (cli.sd / 2).max(2), (cli.sd / 4).max(2)];

    let mut results: Vec<RunResult> = Vec::new();
    for &sd in &sds {
        for ecs in ECS_SWEEP {
            eprintln!("fig9: BF-MHD @ SD {sd} ECS {ecs}");
            results.push(run_engine(
                EngineKind::Mhd,
                &corpus,
                scaled_config(ecs, sd, corpus.total_bytes()),
            ));
        }
    }

    let rows_a: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                format!("BF-MHD-SD-{}", r.sd),
                r.ecs.to_string(),
                format!("{:.4}", r.metrics.metadata_ratio * 100.0),
                format!("{:.3}", r.metrics.real_der),
            ]
        })
        .collect();
    print_table(
        "Fig 9(a): Real DER vs MetaDataRatio (%) at different SD",
        &["series", "ECS (B)", "MetaDataRatio %", "real DER"],
        &rows_a,
    );

    let rows_b: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                format!("BF-MHD-SD-{}", r.sd),
                r.ecs.to_string(),
                format!("{:.4}", r.metrics.throughput_ratio),
                format!("{:.3}", r.metrics.real_der),
            ]
        })
        .collect();
    print_table(
        "Fig 9(b): Real DER vs ThroughputRatio at different SD",
        &["series", "ECS (B)", "ThroughputRatio", "real DER"],
        &rows_b,
    );

    cli.write_json("fig9.json", &results);
    cli.write_internals("fig9_internals.json");
    cli.write_trace();
}
