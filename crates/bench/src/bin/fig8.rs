//! Fig. 8 — trade-off between deduplication efficiency and overhead:
//! (a) data-only DER vs MetaDataRatio, (b) real DER vs MetaDataRatio,
//! (c) data-only DER vs ThroughputRatio, (d) real DER vs ThroughputRatio.
//! Each algorithm traces one curve; the points along it are the ECS sweep.

use mhd_bench::{print_table, run_engine, scaled_config, Cli, EngineKind, RunResult, ECS_SWEEP};

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();

    let mut results: Vec<RunResult> = Vec::new();
    for kind in EngineKind::FIGURE_SET {
        for ecs in ECS_SWEEP {
            eprintln!("fig8: {} @ ECS {ecs}", kind.label());
            results.push(run_engine(
                kind,
                &corpus,
                scaled_config(ecs, cli.sd, corpus.total_bytes()),
            ));
        }
    }

    let curves = |title: &str,
                  x: &dyn Fn(&RunResult) -> String,
                  y: &dyn Fn(&RunResult) -> String| {
        let rows: Vec<Vec<String>> =
            results.iter().map(|r| vec![r.engine.clone(), r.ecs.to_string(), x(r), y(r)]).collect();
        print_table(title, &["algorithm", "ECS (B)", "x", "y"], &rows);
    };

    curves(
        "Fig 8(a): Data-only DER vs MetaDataRatio (%)",
        &|r| format!("{:.4}", r.metrics.metadata_ratio * 100.0),
        &|r| format!("{:.3}", r.metrics.data_only_der),
    );
    curves(
        "Fig 8(b): Real DER vs MetaDataRatio (%)",
        &|r| format!("{:.4}", r.metrics.metadata_ratio * 100.0),
        &|r| format!("{:.3}", r.metrics.real_der),
    );
    curves(
        "Fig 8(c): Data-only DER vs ThroughputRatio",
        &|r| format!("{:.4}", r.metrics.throughput_ratio),
        &|r| format!("{:.3}", r.metrics.data_only_der),
    );
    curves(
        "Fig 8(d): Real DER vs ThroughputRatio",
        &|r| format!("{:.4}", r.metrics.throughput_ratio),
        &|r| format!("{:.3}", r.metrics.real_der),
    );

    // Headline check (paper §V-A/Fig 8a): peak MetaDataRatio ordering
    // SparseIndexing > SubChunk > Bimodal > BF-MHD.
    let peak = |label: &str| {
        results
            .iter()
            .filter(|r| r.engine == label)
            .map(|r| r.metrics.metadata_ratio)
            .fold(0.0f64, f64::max)
    };
    println!(
        "\npeak MetaDataRatio: SparseIndexing {:.4}% | SubChunk {:.4}% | Bimodal {:.4}% | BF-MHD {:.4}%",
        peak("SparseIndexing") * 100.0,
        peak("SubChunk") * 100.0,
        peak("Bimodal") * 100.0,
        peak("BF-MHD") * 100.0,
    );

    cli.write_json("fig8.json", &results);
    cli.write_internals("fig8_internals.json");
    cli.write_trace();
}
