//! Fig. 10 — dataset characteristics and HHR cost:
//! (a) DAD detected by BF-MHD vs ECS, (b) the extra disk accesses caused
//! by HHR vs the number of detected duplicate slices.
//!
//! The paper's sweep includes ECS = 768; the Rabin cut-point mask requires
//! a power of two, so that point is omitted (noted in EXPERIMENTS.md).

use mhd_bench::{print_table, run_engine, scaled_config, Cli, EngineKind, RunResult, ECS_SWEEP};

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();

    let mut results: Vec<RunResult> = Vec::new();
    for ecs in ECS_SWEEP {
        eprintln!("fig10: BF-MHD @ ECS {ecs}");
        results.push(run_engine(
            EngineKind::Mhd,
            &corpus,
            scaled_config(ecs, cli.sd, corpus.total_bytes()),
        ));
    }

    let rows_a: Vec<Vec<String>> = results
        .iter()
        .map(|r| vec![r.ecs.to_string(), format!("{:.1}", r.metrics.dad / 1024.0)])
        .collect();
    print_table(
        "Fig 10(a): DAD (KiB) detected by BF-MHD vs ECS",
        &["ECS (B)", "DAD (KiB)"],
        &rows_a,
    );

    let rows_b: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.ecs.to_string(),
                r.report.stats.hhr_reloads().to_string(),
                r.report.dup_slices.to_string(),
                format!(
                    "{:.3}",
                    r.report.stats.hhr_reloads() as f64 / r.report.dup_slices.max(1) as f64
                ),
            ]
        })
        .collect();
    print_table(
        "Fig 10(b): HHR extra disk accesses vs number of duplicate slices",
        &["ECS (B)", "HHR cost (reloads)", "dup slices L", "cost/L"],
        &rows_b,
    );

    // Paper's observation: actual HHR cost is far below the 3L worst case
    // (and reloads specifically below 2L).
    for r in &results {
        assert!(
            r.report.stats.hhr_reloads() <= 2 * r.report.dup_slices,
            "HHR reloads exceeded the paper's 2L bound at ECS {}",
            r.ecs
        );
    }
    println!("\nall points satisfy the paper's bound: HHR reloads <= 2L");

    cli.write_json("fig10.json", &results);
    cli.write_internals("fig10_internals.json");
    cli.write_trace();
}
