//! Batched-I/O exhibit (extension experiment, not in the paper): write
//! throughput of the on-disk store layer under the synchronous
//! `DirBackend` vs the batched worker-pool `BatchedDirBackend`, across
//! durability levels. The dedup work is identical in every run (same
//! corpus, same engine, same chunking) — the exhibit isolates what the
//! storage path costs, and `--internals` captures the
//! `store.io_batch_ops` / `store.io_batch_bytes` / `store.io_flush_ns`
//! histograms that quantify the batching.

use std::path::PathBuf;
use std::time::Instant;

use mhd_bench::{print_table, scaled_config, Cli};
use mhd_core::{Deduplicator, MhdEngine};
use mhd_store::{Backend, BatchedDirBackend, DirBackend, Durability, IoConfig};
use serde_json::json;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhd-io-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One timed backup run over `backend`; returns (seconds, dup_bytes) —
/// dup_bytes doubles as a cross-config dedup-equivalence check.
fn run<B: Backend>(
    backend: B,
    corpus: &mhd_workload::Corpus,
    config: mhd_core::EngineConfig,
) -> (f64, u64) {
    let mut engine = MhdEngine::new(backend, config).expect("config");
    let start = Instant::now();
    for s in &corpus.snapshots {
        engine.process_snapshot(s).expect("dedup");
    }
    let report = engine.finish().expect("finish");
    (start.elapsed().as_secs_f64(), report.dup_bytes)
}

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();
    let config = scaled_config(4096, cli.sd, corpus.total_bytes());
    let input_mb = corpus.total_bytes() as f64 / (1 << 20) as f64;

    // (label, durability, batched worker threads; None = plain DirBackend)
    let configs: &[(&str, Durability, Option<usize>)] = &[
        ("sync-rename", Durability::Rename, None),
        ("sync-fsync", Durability::Fsync, None),
        ("batched-t1", Durability::Rename, Some(1)),
        ("batched-t4", Durability::Rename, Some(4)),
        ("batched-t4-fsync", Durability::Fsync, Some(4)),
        ("batched-inline", Durability::Rename, Some(0)),
    ];

    let mut rows = Vec::new();
    let mut js = Vec::new();
    let mut reference_dup = None;
    for &(label, durability, threads) in configs {
        eprintln!("io_bench: {label}");
        let root = temp_store(label);
        let _scope = mhd_obs::scope!("io={}", label);
        let (seconds, dup_bytes) = match threads {
            None => {
                run(DirBackend::create_with(&root, durability).expect("store"), &corpus, config)
            }
            Some(threads) => run(
                BatchedDirBackend::create_with(
                    &root,
                    IoConfig { threads, durability, ..IoConfig::default() },
                )
                .expect("store"),
                &corpus,
                config,
            ),
        };
        // Batching must be invisible to dedup: every config finds the
        // exact same duplicates.
        let reference = *reference_dup.get_or_insert(dup_bytes);
        assert_eq!(dup_bytes, reference, "{label}: dedup results diverged");
        let throughput = input_mb / seconds;
        rows.push(vec![
            label.to_string(),
            durability.name().to_string(),
            threads.map_or("-".into(), |t| t.to_string()),
            format!("{seconds:.2}"),
            format!("{throughput:.1}"),
        ]);
        js.push(json!({
            "config": label,
            "durability": durability.name(),
            "io_threads": threads,
            "seconds": seconds,
            "throughput_mib_s": throughput,
        }));
        let _ = std::fs::remove_dir_all(&root);
    }

    print_table(
        "On-disk backup throughput: synchronous vs batched DirBackend (extension experiment)",
        &["config", "durability", "threads", "seconds", "MiB/s"],
        &rows,
    );
    println!("\nevery run writes the identical object set; differences are pure storage-path cost");

    cli.write_json("io_bench.json", &js);
    cli.write_internals("io_bench_internals.json");
    cli.write_trace();
}
