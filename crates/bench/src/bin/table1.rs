//! Table I — "Metadata Size Comparison": the §IV closed-form model
//! evaluated with the measured workload symbols, side by side with the
//! measured ledger of each engine.

use mhd_bench::{print_table, run_engine, scaled_config, Cli, EngineKind};
use mhd_core::analysis::{self, Algorithm, Symbols};
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();
    let ecs = 4096;
    let config = scaled_config(ecs, cli.sd, corpus.total_bytes());

    // Workload symbols: N and D at the shared ECS granularity come from
    // the CDC reference run ("regardless of how chunks are generated",
    // §IV); L and F are per-engine.
    let runs: Vec<_> =
        EngineKind::TABLE_SET.iter().map(|&k| (k, run_engine(k, &corpus, config))).collect();
    let cdc = &runs.iter().find(|(k, _)| *k == EngineKind::Cdc).expect("cdc ran").1;
    let (n, d) = (cdc.report.chunks_stored, cdc.report.chunks_dup);

    let mut rows = Vec::new();
    let mut js = Vec::new();
    for (kind, run) in &runs {
        let algo = match kind {
            EngineKind::Mhd => Algorithm::Mhd,
            EngineKind::SubChunk => Algorithm::SubChunk,
            EngineKind::Bimodal => Algorithm::Bimodal,
            EngineKind::Cdc => Algorithm::Cdc,
            EngineKind::SparseIndexing | EngineKind::Fbc => unreachable!("not in TABLE_SET"),
        };
        let sym =
            Symbols { n, d, l: run.report.dup_slices, f: run.report.files, sd: cli.sd as u64 };
        let model = analysis::metadata_model(algo, sym);
        let ledger = &run.report.ledger;
        rows.push(vec![
            algo.label().to_string(),
            model.inodes_disk_chunks.to_string(),
            ledger.inodes_disk_chunks.to_string(),
            model.inodes_hooks.to_string(),
            ledger.inodes_hooks.to_string(),
            model.manifest_bytes.to_string(),
            ledger.manifest_bytes.to_string(),
            model.total_bytes().to_string(),
            (ledger.total_metadata_bytes()
                - ledger.inodes_file_manifests * 256
                - ledger.file_manifest_bytes)
                .to_string(),
        ]);
        js.push(json!({
            "algorithm": algo.label(),
            "symbols": sym,
            "model": model,
            "measured_ledger": ledger,
        }));
    }
    println!(
        "\nsymbols: N={n} D={d} SD={} (L, F per engine); FileManifests excluded as in the paper's Table I",
        cli.sd
    );
    print_table(
        "Table I: metadata size — model vs measured",
        &[
            "algorithm",
            "chunk inodes (model)",
            "(measured)",
            "hook inodes (model)",
            "(measured)",
            "manifest B (model)",
            "(measured)",
            "total B (model)",
            "(measured)",
        ],
        &rows,
    );

    cli.write_json("table1.json", &js);
    cli.write_internals("table1_internals.json");
    cli.write_trace();
}
