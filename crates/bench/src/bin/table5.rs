//! Table V — "Disk accessing times for Manifests loading in BF-MHD"
//! across the SD × ECS grid.

use mhd_bench::{print_table, run_engine, scaled_config, Cli, EngineKind};
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();
    let sds = [cli.sd, (cli.sd / 2).max(2), (cli.sd / 4).max(2)];
    let ecs_values = [1024usize, 2048, 4096, 8192];

    let mut rows = Vec::new();
    let mut js = Vec::new();
    for &sd in &sds {
        for ecs in ecs_values {
            eprintln!("table5: BF-MHD @ SD {sd} ECS {ecs}");
            let r =
                run_engine(EngineKind::Mhd, &corpus, scaled_config(ecs, sd, corpus.total_bytes()));
            rows.push(vec![
                sd.to_string(),
                ecs.to_string(),
                r.report.stats.manifest_loads().to_string(),
                r.report.stats.cache_hits.to_string(),
            ]);
            js.push(json!({"sd": sd, "ecs": ecs,
                           "manifest_loads": r.report.stats.manifest_loads(),
                           "cache_hits": r.report.stats.cache_hits}));
        }
    }
    print_table(
        "Table V: Manifest-load disk accesses in BF-MHD",
        &["SD", "ECS (B)", "manifest loads", "cache hits"],
        &rows,
    );
    println!("\npaper: loads shrink as ECS grows; smaller SD loads slightly more");

    cli.write_json("table5.json", &js);
    cli.write_internals("table5_internals.json");
    cli.write_trace();
}
