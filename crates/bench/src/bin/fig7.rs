//! Fig. 7 — "Metadata comparison" (SD fixed, ECS ∈ {512..8192}):
//! (a) inodes per MiB, (b) Manifest+Hook MetaDataRatio, (c) FileManifest
//! MetaDataRatio, (d) total MetaDataRatio, for BF-MHD, Bimodal, SubChunk,
//! and SparseIndexing.

use mhd_bench::{print_table, run_engine, scaled_config, Cli, EngineKind, RunResult, ECS_SWEEP};

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();

    let mut results: Vec<RunResult> = Vec::new();
    for ecs in ECS_SWEEP {
        for kind in EngineKind::FIGURE_SET {
            eprintln!("fig7: {} @ ECS {ecs}", kind.label());
            results.push(run_engine(
                kind,
                &corpus,
                scaled_config(ecs, cli.sd, corpus.total_bytes()),
            ));
        }
    }

    let panel = |title: &str, f: &dyn Fn(&RunResult) -> String| {
        let header: Vec<String> = std::iter::once("ECS (B)".to_string())
            .chain(EngineKind::FIGURE_SET.iter().map(|k| k.label().to_string()))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = ECS_SWEEP
            .iter()
            .map(|&ecs| {
                std::iter::once(ecs.to_string())
                    .chain(EngineKind::FIGURE_SET.iter().map(|k| {
                        let r = results
                            .iter()
                            .find(|r| r.ecs == ecs && r.engine == k.label())
                            .expect("all combinations ran");
                        f(r)
                    }))
                    .collect()
            })
            .collect();
        print_table(title, &header_refs, &rows);
    };

    panel("Fig 7(a): Number of inodes per MiB vs ECS", &|r| {
        format!("{:.2}", r.metrics.inodes_per_mib)
    });
    panel("Fig 7(b): Manifest+Hook MetaDataRatio vs ECS", &|r| {
        format!("{:.3e}", r.metrics.manifest_metadata_ratio)
    });
    panel("Fig 7(c): FileManifest MetaDataRatio vs ECS", &|r| {
        format!("{:.3e}", r.metrics.file_manifest_metadata_ratio)
    });
    panel("Fig 7(d): Total MetaDataRatio vs ECS", &|r| format!("{:.3e}", r.metrics.metadata_ratio));

    cli.write_json("fig7.json", &results);
    cli.write_internals("fig7_internals.json");
    cli.write_trace();
}
