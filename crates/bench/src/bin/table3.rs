//! Table III — "RAM used for sparse index in SparseIndexing" vs ECS.

use mhd_bench::{print_table, run_engine, scaled_config, Cli, EngineKind};
use serde_json::json;

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();

    let ecs_values = [1024usize, 2048, 4096, 8192];
    let mut rows = Vec::new();
    let mut js = Vec::new();
    for ecs in ecs_values {
        eprintln!("table3: SparseIndexing @ ECS {ecs}");
        let r = run_engine(
            EngineKind::SparseIndexing,
            &corpus,
            scaled_config(ecs, cli.sd, corpus.total_bytes()),
        );
        let ram_kb = r.report.ram_index_bytes / 1024;
        let pct = r.report.ram_index_bytes as f64 / r.report.input_bytes as f64 * 100.0;
        rows.push(vec![ecs.to_string(), ram_kb.to_string(), format!("{pct:.4}%")]);
        js.push(json!({"ecs": ecs, "sparse_index_ram_bytes": r.report.ram_index_bytes,
                       "fraction_of_input": pct / 100.0}));
    }
    print_table(
        "Table III: RAM used for sparse index in SparseIndexing",
        &["ECS (B)", "RAM (KiB)", "% of input"],
        &rows,
    );
    println!("\npaper: ~0.01% of the input size; smaller ECS -> more chunks -> more hooks");

    cli.write_json("table3.json", &js);
    cli.write_internals("table3_internals.json");
    cli.write_trace();
}
