//! §V-D "Characteristics of the test dataset", measured *independently of
//! any engine*: exact chunk-level duplication (a global hash set over the
//! whole corpus — the upper bound any chunk-based deduplicator can reach
//! at each ECS), duplicate-slice statistics (runs of consecutive duplicate
//! chunks → the DAD), and boundary-shift sensitivity (CDC vs FSP at the
//! same granularity, the LBFS argument for content-defined chunking).

use mhd_bench::{print_table, Cli, ECS_SWEEP};
use mhd_chunking::{Chunker, FixedChunker, RabinChunker};
use mhd_hash::{sha1, ChunkHash, FxHashSet};
use rayon::prelude::*;
use serde_json::json;

struct Characteristics {
    ecs: usize,
    max_der: f64,
    dup_slices: u64,
    dad_bytes: f64,
    fsp_der: f64,
}

fn analyse(corpus: &mhd_workload::Corpus, ecs: usize) -> Characteristics {
    let cdc = RabinChunker::with_avg(ecs).expect("power-of-two ECS");
    let fsp = FixedChunker::new(ecs);

    let mut seen: FxHashSet<ChunkHash> = FxHashSet::default();
    let mut seen_fsp: FxHashSet<ChunkHash> = FxHashSet::default();
    let mut total = 0u64;
    let mut dup_bytes = 0u64;
    let mut dup_bytes_fsp = 0u64;
    let mut dup_slices = 0u64;

    for snapshot in &corpus.snapshots {
        for file in &snapshot.files {
            // Hash all chunks of the file in parallel, then classify
            // sequentially against the global sets.
            let hashes: Vec<(usize, ChunkHash)> = cdc
                .spans(&file.data)
                .par_iter()
                .map(|s| (s.len, sha1(&file.data[s.offset..s.end()])))
                .collect();
            let mut in_slice = false;
            for (len, h) in hashes {
                total += len as u64;
                if !seen.insert(h) {
                    dup_bytes += len as u64;
                    if !in_slice {
                        in_slice = true;
                        dup_slices += 1;
                    }
                } else {
                    in_slice = false;
                }
            }
            for (len, h) in fsp
                .spans(&file.data)
                .par_iter()
                .map(|s| (s.len, sha1(&file.data[s.offset..s.end()])))
                .collect::<Vec<_>>()
            {
                if !seen_fsp.insert(h) {
                    dup_bytes_fsp += len as u64;
                }
            }
        }
    }
    Characteristics {
        ecs,
        max_der: total as f64 / (total - dup_bytes).max(1) as f64,
        dup_slices,
        dad_bytes: dup_bytes as f64 / dup_slices.max(1) as f64,
        fsp_der: total as f64 / (total - dup_bytes_fsp).max(1) as f64,
    }
}

fn main() {
    let cli = Cli::parse();
    let corpus = cli.corpus();

    let mut rows = Vec::new();
    let mut js = Vec::new();
    for ecs in ECS_SWEEP {
        eprintln!("dataset: ECS {ecs}");
        let c = analyse(&corpus, ecs);
        rows.push(vec![
            c.ecs.to_string(),
            format!("{:.3}", c.max_der),
            format!("{:.3}", c.fsp_der),
            c.dup_slices.to_string(),
            format!("{:.1}", c.dad_bytes / 1024.0),
        ]);
        js.push(json!({
            "ecs": c.ecs, "max_chunk_der": c.max_der, "fsp_der": c.fsp_der,
            "dup_slices": c.dup_slices, "dad_bytes": c.dad_bytes,
        }));
    }
    print_table(
        "Dataset characteristics (engine-independent ground truth)",
        &["ECS (B)", "max chunk DER (CDC)", "FSP DER", "dup slices", "DAD (KiB)"],
        &rows,
    );
    println!(
        "\npaper §V-D: maximal data-only DER ≈ 4.15; DAD 90–220 KB shrinking with ECS;\nFSP trails CDC because insert/delete mutations shift fixed boundaries."
    );
    println!(
        "generator ground truth: ideal DER {:.2}, expected DAD {:.0} KiB",
        corpus.stats.ideal_der(),
        corpus.stats.expected_dad() / 1024.0
    );

    cli.write_json("dataset.json", &js);
    cli.write_internals("dataset_internals.json");
    cli.write_trace();
}
