//! SHA-1 throughput: the per-chunk hashing cost that dominates the
//! deduplication CPU budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mhd_hash::{sha1, Sha1};
use std::hint::black_box;

fn bench_sha1(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha1");
    for size in [512usize, 4096, 65536, 1 << 20] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("oneshot", size), &data, |b, data| {
            b.iter(|| sha1(black_box(data)))
        });
    }
    group.finish();

    // Streaming in chunk-sized updates (the HashReader/DiskChunk path).
    let mut group = c.benchmark_group("sha1_streaming");
    let data = vec![0x5Au8; 1 << 20];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("1MiB_in_4KiB_updates", |b| {
        b.iter(|| {
            let mut h = Sha1::new();
            for chunk in data.chunks(4096) {
                h.update(black_box(chunk));
            }
            h.finalize()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sha1);
criterion_main!(benches);
