//! Rolling-fingerprint and chunker throughput: the other half of the
//! deduplication CPU budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mhd_chunking::{
    Chunker, FixedChunker, RabinChunker, RabinFingerprint, RabinTables, TttdChunker,
};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;

fn data(len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(99);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn bench_rolling(c: &mut Criterion) {
    let input = data(1 << 20);
    let mut group = c.benchmark_group("rabin_rolling");
    group.throughput(Throughput::Bytes(input.len() as u64));
    group.bench_function("roll_1MiB", |b| {
        let tables = RabinTables::default_with_window(48);
        b.iter(|| {
            let mut fp = RabinFingerprint::new(tables.clone());
            for &byte in &input {
                fp.roll(byte);
            }
            black_box(fp.value())
        })
    });
    group.finish();
}

fn bench_chunkers(c: &mut Criterion) {
    let input = data(4 << 20);
    let mut group = c.benchmark_group("chunkers");
    group.throughput(Throughput::Bytes(input.len() as u64));
    for ecs in [1024usize, 4096] {
        group.bench_with_input(BenchmarkId::new("rabin_cdc", ecs), &input, |b, input| {
            let chunker = RabinChunker::with_avg(ecs).unwrap();
            b.iter(|| black_box(chunker.cut_points(input)))
        });
        group.bench_with_input(BenchmarkId::new("tttd", ecs), &input, |b, input| {
            let chunker = TttdChunker::with_avg(ecs).unwrap();
            b.iter(|| black_box(chunker.cut_points(input)))
        });
    }
    group.bench_with_input(BenchmarkId::new("fixed", 4096), &input, |b, input| {
        let chunker = FixedChunker::new(4096);
        b.iter(|| black_box(chunker.cut_points(input)))
    });
    group.finish();
}

criterion_group!(benches, bench_rolling, bench_chunkers);
criterion_main!(benches);
