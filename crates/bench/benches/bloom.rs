//! Bloom filter probe costs: every incoming chunk pays one `contains`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mhd_bloom::BloomFilter;
use mhd_hash::sha1;
use std::hint::black_box;

fn bench_bloom(c: &mut Criterion) {
    let keys: Vec<_> = (0u64..10_000).map(|i| sha1(&i.to_le_bytes())).collect();
    let misses: Vec<_> = (100_000u64..110_000).map(|i| sha1(&i.to_le_bytes())).collect();
    let mut filter = BloomFilter::with_bytes(1 << 20, keys.len() as u64);
    for k in &keys {
        filter.insert(k);
    }

    let mut group = c.benchmark_group("bloom");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut f = BloomFilter::with_bytes(1 << 20, keys.len() as u64);
            for k in &keys {
                f.insert(black_box(k));
            }
            f
        })
    });
    group.bench_function("contains_hit_10k", |b| {
        b.iter(|| keys.iter().filter(|k| filter.contains(black_box(k))).count())
    });
    group.bench_function("contains_miss_10k", |b| {
        b.iter(|| misses.iter().filter(|k| filter.contains(black_box(k))).count())
    });
    group.finish();
}

criterion_group!(benches, bench_bloom);
criterion_main!(benches);
