//! End-to-end engine throughput over a small shared corpus — the relative
//! costs behind the paper's ThroughputRatio comparison, isolated from the
//! disk model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mhd_bench::{run_engine, scaled_config, EngineKind};
use mhd_workload::{Corpus, CorpusSpec};
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusSpec {
        seed: 3,
        machines: 4,
        snapshots: 4,
        machine_bytes: 512 << 10,
        ..CorpusSpec::paper_like(8 << 20)
    });
    let bytes = corpus.total_bytes();

    let mut group = c.benchmark_group("engines_end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(bytes));
    for kind in [
        EngineKind::Mhd,
        EngineKind::Cdc,
        EngineKind::Bimodal,
        EngineKind::SubChunk,
        EngineKind::SparseIndexing,
    ] {
        group.bench_with_input(BenchmarkId::new("dedup", kind.label()), &corpus, |b, corpus| {
            b.iter(|| black_box(run_engine(kind, corpus, scaled_config(2048, 16, bytes))))
        });
    }
    group.finish();

    // The pure pass-through baseline the paper divides by.
    let mut group = c.benchmark_group("plain_copy");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("memcpy_stream", |b| {
        b.iter(|| {
            let mut out: Vec<u8> = Vec::with_capacity(bytes as usize);
            for s in &corpus.snapshots {
                for f in &s.files {
                    out.extend_from_slice(black_box(&f.data));
                }
            }
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
