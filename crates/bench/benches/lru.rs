//! LRU cache operation costs: the Manifest cache is touched per chunk.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mhd_cache::LruCache;
use std::hint::black_box;

fn bench_lru(c: &mut Criterion) {
    let n = 10_000u64;
    let mut group = c.benchmark_group("lru");
    group.throughput(Throughput::Elements(n));

    group.bench_function("insert_evicting_10k", |b| {
        b.iter(|| {
            let mut cache: LruCache<u64, u64> = LruCache::new(256);
            for i in 0..n {
                cache.insert(black_box(i), i * 2);
            }
            cache
        })
    });

    group.bench_function("get_hit_10k", |b| {
        let mut cache: LruCache<u64, u64> = LruCache::new(1024);
        for i in 0..1024 {
            cache.insert(i, i);
        }
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..n {
                if let Some(v) = cache.get(&black_box(i % 1024)) {
                    sum = sum.wrapping_add(*v);
                }
            }
            sum
        })
    });

    group.bench_function("get_miss_10k", |b| {
        let mut cache: LruCache<u64, u64> = LruCache::new(1024);
        for i in 0..1024 {
            cache.insert(i, i);
        }
        b.iter(|| (0..n).filter(|i| cache.get(&(i + 1_000_000)).is_some()).count())
    });
    group.finish();
}

criterion_group!(benches, bench_lru);
criterion_main!(benches);
