//! Metadata codec costs: manifests are decoded on every cache miss and
//! re-encoded on every dirty write-back.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mhd_bloom::CountMinSketch;
use mhd_hash::sha1;
use mhd_store::{
    DiskChunkId, Extent, FileManifest, Manifest, ManifestEntry, ManifestFormat, ManifestId,
};
use std::hint::black_box;

fn manifest(entries: usize) -> Manifest {
    let mut m = Manifest::new(ManifestId(1), ManifestFormat::HookFlags);
    let mut offset = 0u64;
    for i in 0..entries {
        let size = 512 + (i as u64 % 7) * 100;
        m.entries.push(ManifestEntry {
            hash: sha1(&(i as u64).to_le_bytes()),
            container: DiskChunkId(1),
            offset,
            size,
            is_hook: i % 16 == 0,
        });
        offset += size;
    }
    m
}

fn bench_manifest_codec(c: &mut Criterion) {
    let m = manifest(1000);
    let encoded = m.encode();
    let mut group = c.benchmark_group("manifest_codec");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("encode_1k_entries", |b| b.iter(|| black_box(&m).encode()));
    group.bench_function("decode_1k_entries", |b| {
        b.iter(|| Manifest::decode(ManifestId(1), black_box(&encoded)).unwrap())
    });
    group.bench_function("build_index_1k_entries", |b| b.iter(|| black_box(&m).build_index()));
    group.finish();
}

fn bench_recipe_codec(c: &mut Criterion) {
    let mut fm = FileManifest::new();
    for i in 0..500u64 {
        fm.push(Extent { container: DiskChunkId(i / 50), offset: i * 3000, len: 1000 });
    }
    let mut group = c.benchmark_group("recipe_codec");
    group.throughput(Throughput::Elements(fm.entry_count() as u64));
    group.bench_function("encode_fixed", |b| b.iter(|| black_box(&fm).encode()));
    group.bench_function("encode_compact", |b| b.iter(|| black_box(&fm).encode_compact()));
    let compact = fm.encode_compact();
    group.bench_function("decode_compact", |b| {
        b.iter(|| FileManifest::decode_compact(black_box(&compact)).unwrap())
    });
    group.finish();
}

fn bench_sketch(c: &mut Criterion) {
    let keys: Vec<_> = (0u64..10_000).map(|i| sha1(&i.to_le_bytes())).collect();
    let mut group = c.benchmark_group("count_min_sketch");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("add_10k", |b| {
        b.iter(|| {
            let mut s = CountMinSketch::with_epsilon(1e-4);
            for k in &keys {
                s.add(black_box(k));
            }
            s
        })
    });
    let mut sketch = CountMinSketch::with_epsilon(1e-4);
    for k in &keys {
        sketch.add(k);
    }
    group.bench_function("estimate_10k", |b| {
        b.iter(|| keys.iter().map(|k| sketch.estimate(black_box(k)) as u64).sum::<u64>())
    });
    group.finish();
}

criterion_group!(benches, bench_manifest_codec, bench_recipe_codec, bench_sketch);
criterion_main!(benches);
