//! Synthetic disk-image backup corpus.
//!
//! The paper evaluates on "disk image backups of a group of 14 PCs running
//! the Windows, Linux or Mac operating systems ... over a period of two
//! weeks", 1.0 TB total, with a measured maximal data-only DER of ≈ 4.15
//! and a Duplication Aggregation Degree (DAD — duplicate bytes per
//! duplicate slice) between 90 KB and 220 KB (Fig. 10a). That dataset is
//! private, so this crate generates a *statistically equivalent* corpus:
//!
//! * `machines` PCs split across `os_families` OS families; machines in a
//!   family start from the same OS base image (cross-machine duplication),
//! * one backup stream per machine per day for `snapshots` days; each day's
//!   image is the previous day's image with localised mutations
//!   (overwrite / insert / delete at sites spaced ~[`CorpusSpec::mean_slice_len`]
//!   apart — this spacing *is* the DAD control), plus occasional fresh
//!   appended data (new files),
//! * everything derived from a single seed, with per-(machine, day)
//!   sub-seeds so generation can fan out across threads (rayon) and still
//!   be bit-for-bit deterministic.
//!
//! Deduplication behaviour depends on the duplication *distribution* —
//! slice lengths, churn rate, boundary shifts from insertions/deletions —
//! not on whether the bytes are real NTFS structures, so this preserves
//! exactly what the paper's experiments measure. The generator reports its
//! ground truth ([`CorpusStats`]) so experiments can sanity-check the
//! calibration (DER ≈ 4, DAD in the 100–200 KB band).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod mutate;
mod spec;
pub mod trace;

pub use corpus::{Corpus, CorpusStats, FileEntry, Snapshot};
pub use mutate::{MutationKind, MutationStats, Mutator};
pub use spec::CorpusSpec;
