//! Corpus parameterisation.

use serde::{Deserialize, Serialize};

/// Parameters of the synthetic disk-image corpus.
///
/// The defaults mirror the paper's dataset shape (14 PCs, 3 OS families,
/// two weeks of daily backups) scaled down in bytes; use
/// [`CorpusSpec::paper_like`] to pick a total size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Number of PCs being backed up.
    pub machines: usize,
    /// Number of daily backups per machine.
    pub snapshots: usize,
    /// Number of OS families sharing a base image (Windows/Linux/Mac in the
    /// paper).
    pub os_families: usize,
    /// Size of one machine's disk image in bytes (initially; insertions and
    /// deletions drift it slightly).
    pub machine_bytes: u64,
    /// Fraction of the initial image that is the OS base shared by the
    /// machine's family.
    pub os_base_fraction: f64,
    /// Mean distance between mutation sites within one day's image, in
    /// bytes. This is the DAD control: unchanged runs between sites become
    /// the duplicate slices.
    pub mean_slice_len: u64,
    /// Mean size of one mutation site in bytes.
    pub mean_site_len: u64,
    /// Probability that a day appends a block of entirely fresh data
    /// ("new files") to the image.
    pub fresh_append_prob: f64,
    /// Size of an appended fresh block, as a fraction of the image.
    pub fresh_append_fraction: f64,
    /// Approximate size of the files each image is split into (the engines
    /// consume per-file byte streams and write per-file recipes).
    pub file_bytes: u64,
    /// Probability that a day also mutates the machine's OS base region
    /// (a "system update"). Most days the base is byte-identical to the
    /// previous day's — the static-region behaviour of real disk images
    /// that big-chunk algorithms exploit.
    pub base_update_prob: f64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            seed: 42,
            machines: 14,
            snapshots: 14,
            os_families: 3,
            machine_bytes: 1 << 20, // 1 MiB ⇒ ~196 MiB corpus
            os_base_fraction: 0.7,
            mean_slice_len: 144 << 10, // ≈ paper's 90–220 KB DAD band
            mean_site_len: 24 << 10,
            fresh_append_prob: 0.3,
            fresh_append_fraction: 0.01,
            file_bytes: 256 << 10,
            base_update_prob: 0.1,
        }
    }
}

impl CorpusSpec {
    /// A paper-shaped corpus of roughly `total_bytes` input volume.
    ///
    /// The mutation geometry is clamped so several mutation sites land in
    /// every daily image even at small scales (otherwise churn quantises
    /// to zero and the duplication ratio diverges); the site/slice length
    /// ratio — i.e. the per-day churn fraction that yields the paper's
    /// DER ≈ 4 over 14 days — is preserved.
    pub fn paper_like(total_bytes: u64) -> Self {
        let spec = CorpusSpec::default();
        let streams = (spec.machines * spec.snapshots) as u64;
        let machine_bytes = (total_bytes / streams).max(64 << 10);
        // Calibration (see EXPERIMENTS.md): 70% of each image is a static
        // OS base (duplicate at any granularity — what Bimodal/SubChunk
        // harvest with big chunks), and the 30% user region churns hard
        // (site:gap = 4:1 ⇒ ~80% of the user region is rewritten daily,
        // in preserved runs of ~machine/28 bytes that only fine-grained
        // algorithms recover). Over 14 snapshots this lands the best
        // data-only DER near the paper's ≈ 4.15 with Bimodal around ≈ 3.4.
        let mean_slice_len = (machine_bytes / 28).clamp(2 << 10, 144 << 10);
        let mean_site_len = mean_slice_len * 4;
        CorpusSpec { machine_bytes, mean_slice_len, mean_site_len, ..spec }
    }

    /// A small, fast corpus for tests: 3 machines, 4 days, 128 KiB images.
    pub fn tiny(seed: u64) -> Self {
        CorpusSpec {
            seed,
            machines: 3,
            snapshots: 4,
            os_families: 2,
            machine_bytes: 128 << 10,
            mean_slice_len: 16 << 10,
            mean_site_len: 2 << 10,
            file_bytes: 32 << 10,
            ..CorpusSpec::default()
        }
    }

    /// Expected total input bytes across all backup streams (before the
    /// slight drift from insert/delete imbalance).
    pub fn expected_total_bytes(&self) -> u64 {
        self.machine_bytes * (self.machines * self.snapshots) as u64
    }

    /// Panics on nonsensical parameters; called by the generator.
    pub fn validate(&self) {
        assert!(self.machines > 0, "need at least one machine");
        assert!(self.snapshots > 0, "need at least one snapshot");
        assert!(self.os_families > 0, "need at least one OS family");
        assert!(self.machine_bytes >= 4096, "machine images must be at least 4 KiB");
        assert!(
            (0.0..=1.0).contains(&self.os_base_fraction),
            "os_base_fraction must be a fraction"
        );
        assert!(self.mean_slice_len > 0 && self.mean_site_len > 0, "means must be positive");
        assert!(self.file_bytes > 0, "file size must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_matches_paper() {
        let s = CorpusSpec::default();
        assert_eq!(s.machines, 14);
        assert_eq!(s.snapshots, 14);
        assert_eq!(s.os_families, 3);
        s.validate();
    }

    #[test]
    fn paper_like_hits_total() {
        let s = CorpusSpec::paper_like(196 << 20);
        assert_eq!(s.expected_total_bytes(), 196 << 20);
        s.validate();
    }

    #[test]
    fn tiny_is_valid() {
        CorpusSpec::tiny(7).validate();
    }

    #[test]
    #[should_panic(expected = "machine images")]
    fn rejects_microscopic_images() {
        CorpusSpec { machine_bytes: 16, ..CorpusSpec::default() }.validate();
    }
}
