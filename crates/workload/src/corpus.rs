//! Corpus generation: machines × daily snapshots of mutating disk images.

use bytes::Bytes;
use mhd_hash::sha1;
use rand::prelude::*;
use rand::rngs::StdRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::mutate::Mutator;
use crate::spec::CorpusSpec;

/// One file within a backup stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Logical path, unique within the corpus
    /// (`m<machine>/d<day>/f<index>`).
    pub path: String,
    /// File content. `Bytes` so engines can slice without copying.
    pub data: Bytes,
}

/// One backup stream: a machine's disk image on one day, split into files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Machine index.
    pub machine: usize,
    /// Day index.
    pub day: usize,
    /// The image content as a sequence of files (engines consume the
    /// concatenated byte stream file by file, as in the paper's Fig. 2).
    pub files: Vec<FileEntry>,
}

impl Snapshot {
    /// Total bytes in this stream.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.data.len() as u64).sum()
    }

    /// Stream identifier used for FileManifest namespacing.
    pub fn stream_id(&self) -> String {
        format!("m{}/d{}", self.machine, self.day)
    }
}

/// Generator ground truth, for calibration checks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Total input bytes over all streams.
    pub total_bytes: u64,
    /// Bytes that are fresh (never seen before) at generation time:
    /// day-0 unique regions + per-day mutation payloads. Lower bound on
    /// what any deduplicator must store.
    pub fresh_bytes: u64,
    /// Mutation sites applied across all days.
    pub mutation_sites: u64,
    /// Bytes carried over unchanged from the previous day (intra-machine
    /// duplicate volume).
    pub preserved_bytes: u64,
}

impl CorpusStats {
    /// Ground-truth upper bound on the data-only DER: total / fresh.
    pub fn ideal_der(&self) -> f64 {
        self.total_bytes as f64 / self.fresh_bytes.max(1) as f64
    }

    /// Ground-truth DAD estimate: preserved bytes per mutation site (each
    /// site terminates one unchanged run).
    pub fn expected_dad(&self) -> f64 {
        self.preserved_bytes as f64 / self.mutation_sites.max(1) as f64
    }
}

/// The generated corpus: streams in backup order (day-major: all machines
/// back up on day 0, then day 1, ...).
///
/// ```
/// use mhd_workload::{Corpus, CorpusSpec};
///
/// let corpus = Corpus::generate(CorpusSpec::tiny(7));
/// assert_eq!(corpus.snapshots.len(), 3 * 4); // 3 machines x 4 days
/// assert!(corpus.stats.ideal_der() > 1.0);   // duplication by construction
/// ```
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Backup streams in processing order.
    pub snapshots: Vec<Snapshot>,
    /// Generation ground truth.
    pub stats: CorpusStats,
    spec: CorpusSpec,
}

/// Deterministic sub-seed for a (machine, day) cell, independent of
/// generation order.
fn sub_seed(master: u64, machine: usize, day: usize) -> u64 {
    let mut bytes = [0u8; 24];
    bytes[..8].copy_from_slice(&master.to_le_bytes());
    bytes[8..16].copy_from_slice(&(machine as u64).to_le_bytes());
    bytes[16..24].copy_from_slice(&(day as u64).to_le_bytes());
    sha1(&bytes).prefix_u64()
}

impl Corpus {
    /// Generates the corpus described by `spec`. Deterministic in
    /// `spec.seed`; machine image evolution fans out over rayon.
    pub fn generate(spec: CorpusSpec) -> Self {
        spec.validate();

        // Shared OS base image per family.
        let base_len = (spec.machine_bytes as f64 * spec.os_base_fraction) as usize;
        let bases: Vec<Vec<u8>> = (0..spec.os_families)
            .map(|f| {
                let mut rng = StdRng::seed_from_u64(sub_seed(spec.seed, usize::MAX - f, 0));
                let mut v = vec![0u8; base_len];
                rng.fill_bytes(&mut v);
                v
            })
            .collect();

        // Evolve each machine's image over the days, in parallel across
        // machines (each machine's history is sequential).
        let per_machine: Vec<(Vec<Vec<u8>>, CorpusStats)> = (0..spec.machines)
            .into_par_iter()
            .map(|m| {
                let family = m % spec.os_families;
                let mut rng = StdRng::seed_from_u64(sub_seed(spec.seed, m, 0));
                let unique_len = spec.machine_bytes as usize - base_len;

                // The image is a static OS base region (shared within the
                // family, rarely updated) followed by the machine's user
                // region (mutated daily). Real disk images behave this
                // way, and the static region is exactly what big-chunk
                // algorithms (Bimodal/SubChunk) exploit.
                let mut base = bases[family].clone();
                let mut user = vec![0u8; unique_len];
                rng.fill_bytes(&mut user);

                let mut stats = CorpusStats {
                    // The family base is fresh only for the first machine of
                    // the family; attribute it there (m < os_families).
                    fresh_bytes: if m < spec.os_families {
                        spec.machine_bytes
                    } else {
                        unique_len as u64
                    },
                    ..Default::default()
                };
                stats.total_bytes += (base.len() + user.len()) as u64;

                let mutator = Mutator::new(spec.mean_slice_len, spec.mean_site_len);
                let mut days = Vec::with_capacity(spec.snapshots);
                days.push([base.as_slice(), user.as_slice()].concat());

                for day in 1..spec.snapshots {
                    let mut rng = StdRng::seed_from_u64(sub_seed(spec.seed, m, day));
                    let mut mstats = mutator.mutate(&mut user, &mut rng);
                    if rng.random::<f64>() < spec.base_update_prob {
                        mstats.absorb(mutator.mutate(&mut base, &mut rng));
                    } else {
                        // Untouched base: one long preserved run.
                        mstats.preserved_bytes += base.len() as u64;
                    }
                    if rng.random::<f64>() < spec.fresh_append_prob {
                        let len = (spec.machine_bytes as f64 * spec.fresh_append_fraction) as usize;
                        mstats.absorb(Mutator::append_fresh(&mut user, len, &mut rng));
                    }
                    stats.fresh_bytes += mstats.fresh_bytes;
                    stats.mutation_sites += mstats.sites;
                    stats.preserved_bytes += mstats.preserved_bytes;
                    stats.total_bytes += (base.len() + user.len()) as u64;
                    days.push([base.as_slice(), user.as_slice()].concat());
                }
                (days, stats)
            })
            .collect();

        // Assemble in day-major backup order and split images into files.
        let mut snapshots = Vec::with_capacity(spec.machines * spec.snapshots);
        let mut stats = CorpusStats::default();
        for (_, s) in &per_machine {
            stats.total_bytes += s.total_bytes;
            stats.fresh_bytes += s.fresh_bytes;
            stats.mutation_sites += s.mutation_sites;
            stats.preserved_bytes += s.preserved_bytes;
        }
        for day in 0..spec.snapshots {
            for (m, (days, _)) in per_machine.iter().enumerate() {
                snapshots.push(split_into_files(m, day, &days[day], spec.file_bytes));
            }
        }
        Corpus { snapshots, stats, spec }
    }

    /// The spec this corpus was generated from.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// Total input bytes over all streams.
    pub fn total_bytes(&self) -> u64 {
        self.stats.total_bytes
    }

    /// Concatenation of all files of all streams (test-sized corpora only).
    pub fn concatenated(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_bytes() as usize);
        for s in &self.snapshots {
            for f in &s.files {
                out.extend_from_slice(&f.data);
            }
        }
        out
    }
}

/// Splits one image into ~`file_bytes` files sharing the image's `Bytes`
/// allocation.
fn split_into_files(machine: usize, day: usize, image: &[u8], file_bytes: u64) -> Snapshot {
    let shared = Bytes::copy_from_slice(image);
    let mut files = Vec::new();
    let mut off = 0usize;
    let step = file_bytes as usize;
    let mut idx = 0;
    while off < shared.len() {
        let end = (off + step).min(shared.len());
        files.push(FileEntry {
            path: format!("m{machine}/d{day}/f{idx}"),
            data: shared.slice(off..end),
        });
        off = end;
        idx += 1;
    }
    Snapshot { machine, day, files }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = Corpus::generate(CorpusSpec::tiny(1));
        let b = Corpus::generate(CorpusSpec::tiny(1));
        assert_eq!(a.snapshots, b.snapshots);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn seeds_change_content() {
        let a = Corpus::generate(CorpusSpec::tiny(1));
        let b = Corpus::generate(CorpusSpec::tiny(2));
        assert_ne!(a.snapshots[0].files[0].data, b.snapshots[0].files[0].data);
    }

    #[test]
    fn day_major_order_and_sizes() {
        let spec = CorpusSpec::tiny(3);
        let c = Corpus::generate(spec);
        assert_eq!(c.snapshots.len(), spec.machines * spec.snapshots);
        for (i, s) in c.snapshots.iter().enumerate() {
            assert_eq!(s.day, i / spec.machines);
            assert_eq!(s.machine, i % spec.machines);
            assert!(s.total_bytes() > 0);
            for f in &s.files {
                assert!(f.data.len() as u64 <= spec.file_bytes);
            }
        }
        let sum: u64 = c.snapshots.iter().map(|s| s.total_bytes()).sum();
        assert_eq!(sum, c.total_bytes());
    }

    #[test]
    fn same_family_day0_images_share_base() {
        let spec = CorpusSpec::tiny(4); // 3 machines, 2 families: m0,m2 share
        let c = Corpus::generate(spec);
        let m0 = &c.snapshots[0];
        let m2 = &c.snapshots[2];
        let base_len = (spec.machine_bytes as f64 * spec.os_base_fraction) as usize;
        let head0: Vec<u8> = m0.files.iter().flat_map(|f| f.data.to_vec()).take(base_len).collect();
        let head2: Vec<u8> = m2.files.iter().flat_map(|f| f.data.to_vec()).take(base_len).collect();
        assert_eq!(head0, head2, "family base must be shared on day 0");
        // m1 is in the other family.
        let head1: Vec<u8> =
            c.snapshots[1].files.iter().flat_map(|f| f.data.to_vec()).take(base_len).collect();
        assert_ne!(head0, head1);
    }

    #[test]
    fn consecutive_days_mostly_identical() {
        let spec = CorpusSpec::tiny(5);
        let c = Corpus::generate(spec);
        // Machine 0, day 0 vs day 1: long common windows must exist.
        let d0: Vec<u8> = c.snapshots[0].files.iter().flat_map(|f| f.data.to_vec()).collect();
        let d1: Vec<u8> =
            c.snapshots[spec.machines].files.iter().flat_map(|f| f.data.to_vec()).collect();
        let probe = &d0[d0.len() / 2..d0.len() / 2 + 2048];
        assert!(d1.windows(probe.len()).any(|w| w == probe));
    }

    #[test]
    fn ground_truth_der_is_plausible() {
        // Paper-shaped corpus at small scale: ideal DER should land near
        // the paper's measured ≈ 4.15 (allowing generator slack).
        let c = Corpus::generate(CorpusSpec::paper_like(48 << 20));
        let der = c.stats.ideal_der();
        assert!((2.5..8.0).contains(&der), "ideal DER {der}");
    }

    #[test]
    fn stats_total_matches_snapshots() {
        let c = Corpus::generate(CorpusSpec::tiny(6));
        let sum: u64 = c.snapshots.iter().map(|s| s.total_bytes()).sum();
        assert_eq!(c.stats.total_bytes, sum);
    }
}
