//! Corpus export/import as a real directory tree.
//!
//! Experiments normally generate the corpus in memory, but a corpus can be
//! materialised to disk (to inspect it, feed it to an external tool, or
//! pin down a dataset for cross-machine comparison) and read back — or a
//! tree of *real* backup images laid out the same way (`m<i>/d<day>/...`)
//! can be imported and driven through the engines.

use std::io;
use std::path::Path;

use bytes::Bytes;

use crate::{Corpus, FileEntry, Snapshot};

/// Writes every stream of `corpus` under `root` as
/// `root/m<machine>/d<day>/f<index>`.
pub fn export_to_dir(corpus: &Corpus, root: &Path) -> io::Result<()> {
    for snapshot in &corpus.snapshots {
        for file in &snapshot.files {
            let path = root.join(&file.path);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(path, &file.data)?;
        }
    }
    Ok(())
}

/// Reads a `m<machine>/d<day>/...` tree back into backup streams, in the
/// same day-major order the generator produces.
pub fn import_from_dir(root: &Path) -> io::Result<Vec<Snapshot>> {
    let mut cells: Vec<(usize, usize, Vec<FileEntry>)> = Vec::new();

    let mut machines: Vec<_> =
        std::fs::read_dir(root)?.filter_map(|e| e.ok()).filter(|e| e.path().is_dir()).collect();
    machines.sort_by_key(|e| e.file_name());
    for m_entry in machines {
        let m_name = m_entry.file_name().to_string_lossy().into_owned();
        let Some(machine) = m_name.strip_prefix('m').and_then(|s| s.parse().ok()) else {
            continue; // not part of a trace layout
        };
        let mut days: Vec<_> = std::fs::read_dir(m_entry.path())?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .collect();
        days.sort_by_key(|e| e.file_name());
        for d_entry in days {
            let d_name = d_entry.file_name().to_string_lossy().into_owned();
            let Some(day) = d_name.strip_prefix('d').and_then(|s| s.parse().ok()) else {
                continue;
            };
            let mut files: Vec<_> = std::fs::read_dir(d_entry.path())?
                .filter_map(|e| e.ok())
                .filter(|e| e.path().is_file())
                .collect();
            // f0, f1, ... f10 must sort numerically, not lexically.
            files.sort_by_key(|e| {
                e.file_name()
                    .to_string_lossy()
                    .strip_prefix('f')
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or(u64::MAX)
            });
            let entries = files
                .into_iter()
                .map(|f| {
                    Ok(FileEntry {
                        path: format!("m{machine}/d{day}/{}", f.file_name().to_string_lossy()),
                        data: Bytes::from(std::fs::read(f.path())?),
                    })
                })
                .collect::<io::Result<Vec<_>>>()?;
            cells.push((machine, day, entries));
        }
    }
    // Day-major, then machine order — the backup schedule.
    cells.sort_by_key(|(m, d, _)| (*d, *m));
    Ok(cells.into_iter().map(|(machine, day, files)| Snapshot { machine, day, files }).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusSpec;

    #[test]
    fn export_import_round_trip() {
        let corpus = Corpus::generate(CorpusSpec::tiny(61));
        let root = std::env::temp_dir().join(format!("mhd-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        export_to_dir(&corpus, &root).unwrap();

        let imported = import_from_dir(&root).unwrap();
        assert_eq!(imported.len(), corpus.snapshots.len());
        for (a, b) in imported.iter().zip(&corpus.snapshots) {
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.day, b.day);
            assert_eq!(a.files, b.files);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn import_ignores_foreign_directories() {
        let root = std::env::temp_dir().join(format!("mhd-trace-foreign-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("not-a-machine")).unwrap();
        std::fs::create_dir_all(root.join("m0/d0")).unwrap();
        std::fs::write(root.join("m0/d0/f0"), b"data").unwrap();
        let imported = import_from_dir(&root).unwrap();
        assert_eq!(imported.len(), 1);
        assert_eq!(&imported[0].files[0].data[..], b"data");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
