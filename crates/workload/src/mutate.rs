//! The day-to-day image mutation model.

use rand::prelude::*;
use rand::rngs::StdRng;

/// What one mutation site does to the image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Overwrite `len` bytes in place with fresh data (file edits; no
    /// boundary shift).
    Overwrite,
    /// Insert `len` fresh bytes (file growth; shifts everything after it —
    /// the case fixed-size chunking cannot handle).
    Insert,
    /// Delete `len` bytes (file truncation/removal; also shifts).
    Delete,
}

/// Ground-truth accounting of what a mutation pass changed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MutationStats {
    /// Mutation sites applied.
    pub sites: u64,
    /// Fresh bytes written (overwrites + inserts + appended blocks).
    pub fresh_bytes: u64,
    /// Bytes deleted.
    pub deleted_bytes: u64,
    /// Unchanged-run bytes between/around sites (duplicate-slice ground
    /// truth for DAD calibration).
    pub preserved_bytes: u64,
}

/// Applies localized mutations to disk images, day over day.
///
/// Sites are spaced exponentially with mean `mean_slice_len`, each site
/// overwriting, inserting, or deleting an exponentially-sized span with
/// mean `mean_site_len`. Overwrites are twice as likely as inserts or
/// deletes, and insert/delete are balanced so image size stays roughly
/// stationary.
pub struct Mutator {
    mean_slice_len: f64,
    mean_site_len: f64,
}

impl Mutator {
    /// Creates a mutator with the given spacing/site-size means (bytes).
    pub fn new(mean_slice_len: u64, mean_site_len: u64) -> Self {
        assert!(mean_slice_len > 0 && mean_site_len > 0);
        Mutator { mean_slice_len: mean_slice_len as f64, mean_site_len: mean_site_len as f64 }
    }

    fn exp(&self, rng: &mut StdRng, mean: f64) -> usize {
        let u: f64 = rng.random::<f64>().max(1e-12);
        ((-u.ln()) * mean).round().max(1.0) as usize
    }

    /// Mutates `image` in place, returning what changed.
    pub fn mutate(&self, image: &mut Vec<u8>, rng: &mut StdRng) -> MutationStats {
        let mut stats = MutationStats::default();
        let mut out = Vec::with_capacity(image.len() + image.len() / 16);
        let mut pos = 0usize;

        while pos < image.len() {
            let gap = self.exp(rng, self.mean_slice_len).min(image.len() - pos);
            out.extend_from_slice(&image[pos..pos + gap]);
            stats.preserved_bytes += gap as u64;
            pos += gap;
            if pos >= image.len() {
                break;
            }

            let span = self.exp(rng, self.mean_site_len);
            stats.sites += 1;
            let kind = match rng.random_range(0..4u8) {
                0 | 1 => MutationKind::Overwrite,
                2 => MutationKind::Insert,
                _ => MutationKind::Delete,
            };
            match kind {
                MutationKind::Overwrite => {
                    let span = span.min(image.len() - pos);
                    let start = out.len();
                    out.resize(start + span, 0);
                    rng.fill_bytes(&mut out[start..]);
                    stats.fresh_bytes += span as u64;
                    pos += span;
                }
                MutationKind::Insert => {
                    // Clamp like Delete so insert/delete volumes stay
                    // balanced and the image size stationary.
                    let span = span.min(image.len() - pos);
                    let start = out.len();
                    out.resize(start + span, 0);
                    rng.fill_bytes(&mut out[start..]);
                    stats.fresh_bytes += span as u64;
                    // pos unchanged: old data continues after the insert.
                }
                MutationKind::Delete => {
                    let span = span.min(image.len() - pos);
                    stats.deleted_bytes += span as u64;
                    pos += span;
                }
            }
        }
        *image = out;
        stats
    }

    /// Appends `len` fresh bytes ("new files" churn).
    pub fn append_fresh(image: &mut Vec<u8>, len: usize, rng: &mut StdRng) -> MutationStats {
        let start = image.len();
        image.resize(start + len, 0);
        rng.fill_bytes(&mut image[start..]);
        MutationStats { sites: 1, fresh_bytes: len as u64, ..Default::default() }
    }
}

impl MutationStats {
    /// Element-wise accumulation.
    pub fn absorb(&mut self, other: MutationStats) {
        self.sites += other.sites;
        self.fresh_bytes += other.fresh_bytes;
        self.deleted_bytes += other.deleted_bytes;
        self.preserved_bytes += other.preserved_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn image(len: usize, seed: u64) -> Vec<u8> {
        let mut v = vec![0u8; len];
        rng(seed).fill_bytes(&mut v);
        v
    }

    #[test]
    fn preserves_most_bytes_at_long_spacing() {
        let m = Mutator::new(64 << 10, 1 << 10);
        let mut img = image(1 << 20, 1);
        let before = img.clone();
        let stats = m.mutate(&mut img, &mut rng(2));
        assert!(stats.sites > 0);
        // Most of the image is untouched runs.
        assert!(stats.preserved_bytes as usize > before.len() * 3 / 4);
        // Accounting consistency: output = preserved + fresh.
        assert_eq!(img.len() as u64, stats.preserved_bytes + stats.fresh_bytes);
        // And input = preserved + overwritten-or-deleted old bytes, which
        // is bounded by fresh + deleted.
        assert!(
            before.len() as u64 <= stats.preserved_bytes + stats.fresh_bytes + stats.deleted_bytes
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let m = Mutator::new(8 << 10, 1 << 10);
        let mut a = image(256 << 10, 3);
        let mut b = a.clone();
        m.mutate(&mut a, &mut rng(4));
        m.mutate(&mut b, &mut rng(4));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let m = Mutator::new(8 << 10, 1 << 10);
        let mut a = image(256 << 10, 3);
        let mut b = a.clone();
        m.mutate(&mut a, &mut rng(5));
        m.mutate(&mut b, &mut rng(6));
        assert_ne!(a, b);
    }

    #[test]
    fn image_size_roughly_stationary() {
        let m = Mutator::new(16 << 10, 2 << 10);
        let mut img = image(1 << 20, 7);
        let mut r = rng(8);
        for _ in 0..10 {
            m.mutate(&mut img, &mut r);
        }
        let ratio = img.len() as f64 / (1 << 20) as f64;
        assert!((0.5..2.0).contains(&ratio), "image drifted to {ratio}x");
    }

    #[test]
    fn append_fresh_extends_and_accounts() {
        let mut img = image(1000, 9);
        let stats = Mutator::append_fresh(&mut img, 500, &mut rng(10));
        assert_eq!(img.len(), 1500);
        assert_eq!(stats.fresh_bytes, 500);
    }

    #[test]
    fn shared_prefix_means_slices_survive() {
        // After one mutation pass, long common substrings must remain (the
        // duplicate slices dedup finds). Check cheaply: some 4 KiB window
        // of the old image appears verbatim in the new one.
        let m = Mutator::new(64 << 10, 1 << 10);
        let mut img = image(512 << 10, 11);
        let before = img.clone();
        m.mutate(&mut img, &mut rng(12));
        let probe = &before[100_000..104_096];
        let found = img.windows(probe.len()).any(|w| w == probe);
        assert!(found, "no preserved 4 KiB slice found");
    }
}
