//! Runnable examples for the `mhd-dedup` workspace.
//!
//! * `quickstart` — deduplicate a two-day synthetic backup with BF-MHD and
//!   restore it byte-exactly.
//! * `backup_rotation` — a backup service processing daily streams
//!   through the staged pipeline, reporting per-day savings.
//! * `image_farm` — a VM-image farm (clone-heavy) comparing MHD's
//!   metadata bill against flat CDC.
//! * `algorithm_shootout` — all engines over one corpus, side by
//!   side.
//! * `on_disk_store` — the same engine running against a real directory
//!   backend instead of the in-memory substrate.
//! * `fleet_backup` — sharded parallel deduplication with machine
//!   affinity.
//! * `retention` — the full lifecycle: backup, retirement (GC),
//!   compaction, restore.
//!
//! Run with e.g. `cargo run --release -p mhd-examples --bin quickstart`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Formats a byte count in a friendly unit.
pub fn human_bytes(n: u64) -> String {
    match n {
        n if n >= 1 << 30 => format!("{:.2} GiB", n as f64 / (1u64 << 30) as f64),
        n if n >= 1 << 20 => format!("{:.2} MiB", n as f64 / (1u64 << 20) as f64),
        n if n >= 1 << 10 => format!("{:.2} KiB", n as f64 / (1u64 << 10) as f64),
        n => format!("{n} B"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(3 << 20), "3.00 MiB");
        assert_eq!(human_bytes(5 << 30), "5.00 GiB");
    }
}
