//! The same engine running against a real directory backend: DiskChunks,
//! Manifests, Hooks and FileManifests become actual files, as in the
//! paper's "user space of the Ext3 file system" prototypes, and a file is
//! restored straight from them.

use mhd_core::{restore, Deduplicator, EngineConfig, MhdEngine};
use mhd_examples::human_bytes;
use mhd_store::{Backend, DirBackend, FileKind};
use mhd_workload::{Corpus, CorpusSpec};

fn main() {
    let root = std::env::temp_dir().join(format!("mhd-on-disk-{}", std::process::id()));
    println!("store root: {}", root.display());
    let backend = DirBackend::create(&root).expect("create store layout");

    let corpus = Corpus::generate(CorpusSpec::tiny(3));
    let mut engine = MhdEngine::new(backend, EngineConfig::new(512, 8)).expect("config");
    for s in &corpus.snapshots {
        engine.process_snapshot(s).expect("dedup");
    }
    let report = engine.finish().expect("finish");
    println!(
        "deduplicated {} -> {} stored + {} metadata",
        human_bytes(report.input_bytes),
        human_bytes(report.ledger.stored_data_bytes),
        human_bytes(report.ledger.total_metadata_bytes()),
    );

    // Show the on-disk layout.
    let substrate = engine.substrate_mut();
    for kind in FileKind::ALL {
        println!("{:>16}/: {} files", kind.dir_name(), substrate.backend_mut().count(kind));
    }

    // Restore one file straight from the directory store.
    let target = &corpus.snapshots.last().expect("streams").files[0];
    let restored = restore::restore_file(substrate, &target.path).expect("restore");
    assert_eq!(restored, target.data, "restore must be byte-exact");
    println!("restored {} ({}) byte-exactly", target.path, human_bytes(restored.len() as u64));

    std::fs::remove_dir_all(&root).expect("cleanup");
    println!("cleaned up {}", root.display());
}
