//! A VM-image farm: many clones of few golden images, lightly customised —
//! the clone-heavy workload the paper's introduction motivates. Compares
//! BF-MHD's metadata bill against flat CDC at the same dedup granularity:
//! both find essentially all the duplication, but CDC pays one hook inode
//! + manifest entry per chunk while SHM merges them away.

use mhd_core::{CdcEngine, Deduplicator, EngineConfig, MhdEngine};
use mhd_examples::human_bytes;
use mhd_store::MemBackend;
use mhd_workload::{Corpus, CorpusSpec};

fn main() {
    // 12 VMs cloned from 2 golden images, 6 days, high base share.
    let spec = CorpusSpec {
        seed: 23,
        machines: 12,
        snapshots: 6,
        os_families: 2,
        machine_bytes: 512 << 10,
        os_base_fraction: 0.9, // golden image dominates
        mean_slice_len: 24 << 10,
        mean_site_len: 8 << 10,
        ..CorpusSpec::default()
    };
    let corpus = Corpus::generate(spec);
    println!(
        "farm: {} VM snapshots, {} ({} golden images)",
        corpus.snapshots.len(),
        human_bytes(corpus.total_bytes()),
        spec.os_families
    );

    let config = EngineConfig::new(1024, 16);
    let run = |name: &str, report: mhd_core::DedupReport| {
        let m = mhd_core::metrics::compute(&report, &mhd_core::metrics::DiskModel::default());
        println!(
            "{name:>8}: data DER {:.2} | real DER {:.2} | metadata {} ({:.3}%) | {} hook inodes | {} manifest B",
            m.data_only_der,
            m.real_der,
            human_bytes(report.ledger.total_metadata_bytes()),
            m.metadata_ratio * 100.0,
            report.ledger.inodes_hooks,
            report.ledger.manifest_bytes,
        );
        report
    };

    let mut mhd = MhdEngine::new(MemBackend::new(), config).expect("config");
    for s in &corpus.snapshots {
        mhd.process_snapshot(s).expect("dedup");
    }
    let mhd_report = run("BF-MHD", mhd.finish().expect("finish"));

    let mut cdc = CdcEngine::new(MemBackend::new(), config).expect("config");
    for s in &corpus.snapshots {
        cdc.process_snapshot(s).expect("dedup");
    }
    let cdc_report = run("CDC", cdc.finish().expect("finish"));

    let saving = 1.0
        - mhd_report.ledger.total_metadata_bytes() as f64
            / cdc_report.ledger.total_metadata_bytes() as f64;
    println!(
        "\nmetadata harnessing saved {:.1}% of CDC's metadata at the same granularity",
        saving * 100.0
    );
}
