//! All engines over one corpus, side by side — a miniature of the
//! paper's §V comparison.

use mhd_core::metrics::{compute, DiskModel};
use mhd_core::{
    BimodalEngine, CdcEngine, DedupReport, Deduplicator, EngineConfig, FbcEngine, MhdEngine,
    SparseIndexEngine, SubChunkEngine,
};
use mhd_examples::human_bytes;
use mhd_store::MemBackend;
use mhd_workload::{Corpus, CorpusSpec};

fn drive(engine: &mut dyn Deduplicator, corpus: &Corpus) -> DedupReport {
    for s in &corpus.snapshots {
        engine.process_snapshot(s).expect("dedup");
    }
    engine.finish().expect("finish")
}

fn main() {
    let corpus = Corpus::generate(CorpusSpec { seed: 5, ..CorpusSpec::paper_like(32 << 20) });
    println!("corpus: {} streams, {}\n", corpus.snapshots.len(), human_bytes(corpus.total_bytes()));

    let mut config = EngineConfig::new(2048, 16);
    config.cache_manifests = 8;
    let disk = DiskModel::default();

    println!(
        "{:>16}  {:>9} {:>9} {:>11} {:>11} {:>8}",
        "algorithm", "data DER", "real DER", "metadata", "throughput", "accesses"
    );
    let reports: Vec<DedupReport> = vec![
        drive(&mut MhdEngine::new(MemBackend::new(), config).unwrap(), &corpus),
        drive(&mut BimodalEngine::new(MemBackend::new(), config).unwrap(), &corpus),
        drive(&mut SubChunkEngine::new(MemBackend::new(), config).unwrap(), &corpus),
        drive(&mut SparseIndexEngine::new(MemBackend::new(), config).unwrap(), &corpus),
        drive(&mut CdcEngine::new(MemBackend::new(), config).unwrap(), &corpus),
        drive(&mut FbcEngine::new(MemBackend::new(), config).unwrap(), &corpus),
    ];

    for report in &reports {
        let m = compute(report, &disk);
        println!(
            "{:>16}  {:>9.3} {:>9.3} {:>10.4}% {:>11.4} {:>8}",
            report.algorithm,
            m.data_only_der,
            m.real_der,
            m.metadata_ratio * 100.0,
            m.throughput_ratio,
            report.stats.total_with_bloom(),
        );
    }

    let mhd = &reports[0];
    println!(
        "\nBF-MHD detected {} of duplicates in {} slices with only {} HHR byte reloads (bound 2L = {})",
        human_bytes(mhd.dup_bytes),
        mhd.dup_slices,
        mhd.stats.hhr_reloads(),
        2 * mhd.dup_slices,
    );
}
