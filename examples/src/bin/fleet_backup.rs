//! A sharded backup fleet: machine-affinity routing across parallel MHD
//! shards — the "large scale data backup" deployment the paper's
//! introduction motivates — including what sharding costs in cross-machine
//! duplication.

use mhd_core::shard::ShardedMhd;
use mhd_core::{Deduplicator, EngineConfig, MhdEngine};
use mhd_examples::human_bytes;
use mhd_store::MemBackend;
use mhd_workload::{Corpus, CorpusSpec};

fn main() {
    let spec = CorpusSpec { seed: 99, ..CorpusSpec::paper_like(48 << 20) };
    let machines = spec.machines;
    let corpus = Corpus::generate(spec);
    println!(
        "fleet input: {} machines x {} days, {}",
        machines,
        spec.snapshots,
        human_bytes(corpus.total_bytes())
    );

    let config = EngineConfig::new(2048, 16);

    // Single-node reference.
    let mut single = MhdEngine::new(MemBackend::new(), config).expect("config");
    let start = std::time::Instant::now();
    for s in &corpus.snapshots {
        single.process_snapshot(s).expect("dedup");
    }
    let single_report = single.finish().expect("finish");
    let single_wall = start.elapsed().as_secs_f64();

    println!("\n{:>10} {:>12} {:>10} {:>12}", "shards", "stored", "data DER", "wall (s)");
    println!(
        "{:>10} {:>12} {:>10.3} {:>12.2}",
        1,
        human_bytes(single_report.ledger.stored_data_bytes),
        single_report.input_bytes as f64 / single_report.ledger.stored_data_bytes as f64,
        single_wall,
    );

    for shards in [2usize, 4, 7] {
        let mut fleet = ShardedMhd::new_in_memory(shards, config).expect("config");
        let start = std::time::Instant::now();
        for day in corpus.snapshots.chunks(machines) {
            fleet.process_batch(day).expect("batch");
        }
        let (merged, _) = fleet.finish().expect("finish");
        println!(
            "{:>10} {:>12} {:>10.3} {:>12.2}",
            shards,
            human_bytes(merged.ledger.stored_data_bytes),
            merged.input_bytes as f64 / merged.ledger.stored_data_bytes as f64,
            start.elapsed().as_secs_f64(),
        );
    }
    println!(
        "\nsharding trades cross-machine duplicates (shared OS bases land on\ndifferent shards) for parallel wall-clock; day-over-day dedup is unaffected."
    );
}
