//! A retention policy in action: keep the last 7 daily backups, retire the
//! rest, and compact sparse containers — the full lifecycle (backup → GC →
//! compaction → restore) on one store.

use mhd_core::{compact, gc, restore, Deduplicator, EngineConfig, MhdEngine};
use mhd_examples::human_bytes;
use mhd_store::MemBackend;
use mhd_workload::{Corpus, CorpusSpec};

const KEEP_DAYS: usize = 7;

fn main() {
    let spec = CorpusSpec { seed: 55, ..CorpusSpec::paper_like(32 << 20) };
    let machines = spec.machines;
    let days = spec.snapshots;
    let corpus = Corpus::generate(spec);
    println!(
        "retention demo: {} machines x {} days, {}; policy: keep last {KEEP_DAYS} days",
        machines,
        days,
        human_bytes(corpus.total_bytes())
    );

    let mut engine =
        MhdEngine::new(MemBackend::new(), EngineConfig::new(2048, 16)).expect("config");

    println!(
        "\n{:>4} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "day", "ingested", "stored", "gc freed", "compacted", "total output"
    );
    for day in 0..days {
        for snapshot in &corpus.snapshots[day * machines..(day + 1) * machines] {
            engine.process_snapshot(snapshot).expect("dedup");
        }
        // finish() flushes dirty manifests so maintenance sees a
        // consistent store; the engine keeps accepting streams afterwards.
        let _ = engine.finish().expect("flush");

        let (mut gc_freed, mut compacted) = (0u64, 0u64);
        if day >= KEEP_DAYS {
            let retire = day - KEEP_DAYS;
            for machine in 0..machines {
                let report =
                    gc::delete_stream(engine.substrate_mut(), &format!("m{machine}/d{retire}/"))
                        .expect("gc");
                gc_freed += report.data_bytes_freed;
            }
            let report = compact::compact(engine.substrate_mut(), 0.7).expect("compact");
            compacted = report.bytes_reclaimed;
        }

        let ledger = engine.substrate_mut().ledger();
        let ingested: u64 =
            corpus.snapshots[..(day + 1) * machines].iter().map(|s| s.total_bytes()).sum();
        println!(
            "{:>4} {:>12} {:>12} {:>10} {:>10} {:>12}",
            day,
            human_bytes(ingested),
            human_bytes(ledger.stored_data_bytes),
            human_bytes(gc_freed),
            human_bytes(compacted),
            human_bytes(ledger.total_output_bytes()),
        );
    }

    // The retained window must still restore byte-exactly.
    let mut verified = 0;
    for snapshot in corpus.snapshots.iter().filter(|s| s.day + KEEP_DAYS >= days) {
        for file in &snapshot.files {
            let restored =
                restore::restore_file(engine.substrate_mut(), &file.path).expect("restore");
            assert_eq!(restored, file.data, "{}", file.path);
            verified += 1;
        }
    }
    let fsck = mhd_core::fsck::check_store(engine.substrate_mut());
    assert!(fsck.is_healthy(), "{:?}", fsck.problems);
    println!("\nretained window verified: {verified} files byte-exact; store fsck-clean");
}
