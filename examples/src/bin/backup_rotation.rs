//! A backup service processing a two-week daily rotation through the
//! staged pipeline (chunk+hash prefetched on a producer thread), printing
//! the cumulative savings after every day — the way an operator would
//! watch a dedup appliance fill up.

use mhd_core::{pipeline, Deduplicator, EngineConfig, MhdEngine};
use mhd_examples::human_bytes;
use mhd_store::MemBackend;
use mhd_workload::{Corpus, CorpusSpec};

fn main() {
    let spec = CorpusSpec { seed: 11, ..CorpusSpec::paper_like(32 << 20) };
    let days = spec.snapshots;
    let machines = spec.machines;
    let corpus = Corpus::generate(spec);
    println!("rotation: {machines} machines x {days} days, {}", human_bytes(corpus.total_bytes()));

    let mut engine =
        MhdEngine::new(MemBackend::new(), EngineConfig::new(2048, 16)).expect("valid config");

    println!("\n{:>4}  {:>12}  {:>12}  {:>9}  {:>7}", "day", "ingested", "stored", "saved", "HHR");
    for day in 0..days {
        // One day's streams: the pipeline overlaps staging with dedup.
        let streams = &corpus.snapshots[day * machines..(day + 1) * machines];
        pipeline::run_pipelined(&mut engine, streams, 4).expect("pipelined dedup");

        let ledger = engine.substrate().ledger();
        let ingested: u64 =
            corpus.snapshots[..(day + 1) * machines].iter().map(|s| s.total_bytes()).sum();
        let stored = ledger.total_output_bytes();
        println!(
            "{:>4}  {:>12}  {:>12}  {:>8.1}%  {:>7}",
            day,
            human_bytes(ingested),
            human_bytes(stored),
            (1.0 - stored as f64 / ingested as f64) * 100.0,
            "-",
        );
    }

    let report = engine.finish().expect("finish");
    println!(
        "\nfinal: real DER {:.2}, {} duplicate slices, {} HHR re-chunks, {} byte reloads",
        report.input_bytes as f64 / report.ledger.total_output_bytes() as f64,
        report.dup_slices,
        report.hhr_count,
        report.stats.hhr_reloads(),
    );
}
