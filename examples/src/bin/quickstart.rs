//! Quickstart: deduplicate two days of backups with BF-MHD, inspect what
//! the metadata harnessing bought, and restore everything byte-exactly.

use mhd_core::{restore, Deduplicator, EngineConfig, MhdEngine};
use mhd_examples::human_bytes;
use mhd_store::MemBackend;
use mhd_workload::{Corpus, CorpusSpec};

fn main() {
    // A small synthetic disk-image corpus: 3 machines, 4 daily backups.
    let corpus = Corpus::generate(CorpusSpec::tiny(7));
    println!(
        "corpus: {} backup streams, {} total",
        corpus.snapshots.len(),
        human_bytes(corpus.total_bytes())
    );

    // ECS = 512 B expected chunks, SD = 8 (one Hook per 8 stored hashes).
    let mut engine =
        MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).expect("valid config");

    for snapshot in &corpus.snapshots {
        engine.process_snapshot(snapshot).expect("dedup");
    }
    let report = engine.finish().expect("finish");

    println!("\n-- deduplication --");
    println!("input:           {}", human_bytes(report.input_bytes));
    println!("stored data:     {}", human_bytes(report.ledger.stored_data_bytes));
    println!("duplicates:      {} in {} slices", human_bytes(report.dup_bytes), report.dup_slices);
    println!("metadata:        {}", human_bytes(report.ledger.total_metadata_bytes()));
    println!(
        "manifest bytes:  {} across {} manifests ({} hooks, {} HHR re-chunks)",
        human_bytes(report.ledger.manifest_bytes),
        report.ledger.inodes_manifests,
        report.ledger.inodes_hooks,
        report.hhr_count,
    );
    let metrics = mhd_core::metrics::compute(&report, &mhd_core::metrics::DiskModel::default());
    println!("data-only DER:   {:.2}", metrics.data_only_der);
    println!("real DER:        {:.2}", metrics.real_der);
    println!("MetaDataRatio:   {:.4}%", metrics.metadata_ratio * 100.0);

    // Every deduplicated file must restore to its original bytes.
    let verified = restore::verify_corpus(engine.substrate_mut(), &corpus).expect("restore");
    println!("\n-- restore --\nverified {verified} files byte-exactly");
}
