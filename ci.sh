#!/usr/bin/env bash
# The full local CI gate. Run before every push; everything must pass.
#
#   ./ci.sh          # tier-1 + feature matrix + style + lints + docs
#   ./ci.sh tier1    # just the tier-1 gate (build + tests)
#
# Stages:
#   1. tier-1: release build + full test suite (ROADMAP.md)
#   2. crash safety — the fault matrix + a --durability fsync smoke backup
#   3. feature matrix — the obs-disabled workspace still builds, and the
#      store/core crash-safety tests pass with obs compiled out
#   4. analysis  — `mhd compare` finds zero regressions across two
#      same-seed runs (and flags differing runs), and `mhd trace analyze`
#      digests a bench-produced trace
#   5. daemon    — `mhd serve` end-to-end: three concurrent client
#      sessions over the Unix socket, per-tenant restore + byte compare,
#      fsck, clean shutdown; then a daemon_bench smoke sweep gating the
#      two-phase commit (dedup equivalence across session counts, 4-session
#      throughput >= 0.9x the 2-session figure, exhibit JSON produced)
#   6. chunker   — chunker_bench smoke: per-chunker byte-exact restore
#      probe, SWAR/scalar/calibrated FastCDC cut-point identity, and the
#      FastCDC >= Rabin throughput gate
#   7. lint      — mhd-lint invariant passes incl. L7 lock-order and L8
#      id-range (ratcheted against lint-baseline.json, SARIF emitted) +
#      exhaustive model checking of all six protocols (flush, trace-ring,
#      GC-protection/splice-order, two-phase publish, intent-record
#      crash recovery, compaction-vs-GC) on separate threads with
#      --require-complete, plus all seven seeded-bug mutants as negative
#      tests of the checker itself
#   8. rustfmt   — style, enforced via rustfmt.toml
#   9. clippy    — all targets, warnings are errors
#  10. rustdoc   — every public item documented, no broken links
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "tier-1: cargo build --release"
cargo build --release

step "tier-1: cargo test -q"
cargo test -q

if [[ "${1:-}" == "tier1" ]]; then
    echo "tier-1 gate passed."
    exit 0
fi

step "crash safety: fault-injection matrix"
cargo test -q -p mhd-integration --test fault_injection

step "crash safety: mhd backup --durability fsync smoke run + fsck"
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
mkdir -p "$SMOKE/src"
head -c 262144 /dev/urandom > "$SMOKE/src/disk.img"
./target/release/mhd backup "$SMOKE/src" --store "$SMOKE/store" \
    --durability fsync --io-threads 2 --chunker fastcdc --label smoke
./target/release/mhd fsck --store "$SMOKE/store"
./target/release/mhd restore smoke-0/disk.img --store "$SMOKE/store" -o "$SMOKE/restored.img"
cmp "$SMOKE/src/disk.img" "$SMOKE/restored.img"

step "analysis: mhd compare on two same-seed runs + mhd trace analyze"
./target/release/table1 --bytes 4M --internals --out "$SMOKE/run_a" > /dev/null
./target/release/table1 --bytes 4M --internals --out "$SMOKE/run_b" > /dev/null
# Same seed, same size: deterministic counters and histogram counts, so
# the comparator must find zero regressions (timing sums are excluded by
# default precisely to make this gate stable).
./target/release/mhd compare \
    "$SMOKE/run_a/table1_internals.json" "$SMOKE/run_b/table1_internals.json"
# A differently-sized run must trip the regression gate (nonzero exit).
# 32M clears the corpus generator's 64 KiB/machine floor (4M does not),
# so the two runs chunk genuinely different inputs.
./target/release/table1 --bytes 32M --internals --out "$SMOKE/run_c" \
    --trace "$SMOKE/run_c/trace.json" > /dev/null
if ./target/release/mhd compare \
    "$SMOKE/run_a/table1_internals.json" "$SMOKE/run_c/table1_internals.json" > /dev/null
then
    echo "error: mhd compare must exit nonzero on differing runs" >&2
    exit 1
fi
./target/release/mhd trace analyze "$SMOKE/run_c/trace.jsonl"

step "feature matrix: cargo build --workspace --no-default-features"
cargo build --workspace --no-default-features

# The integration crate pins obs on; store/core built in isolation compile
# it out, so their torn-write/recovery tests cover the obs-off config.
step "feature matrix: crash-safety tests with obs compiled out"
cargo test -q -p mhd-store -p mhd-core

step "daemon: concurrent client sessions over mhd serve"
mkdir -p "$SMOKE/clients"
for t in a b c; do
    mkdir -p "$SMOKE/clients/$t"
    head -c 131072 /dev/urandom > "$SMOKE/clients/$t/image.img"
done
./target/release/mhd serve --store "$SMOKE/daemon-store" \
    --socket "$SMOKE/mhd.sock" &
SERVE_PID=$!
for _ in $(seq 1 50); do
    [[ -S "$SMOKE/mhd.sock" ]] && break
    sleep 0.1
done
./target/release/mhd client ping --socket "$SMOKE/mhd.sock"
CLIENT_PIDS=()
for t in a b c; do
    ./target/release/mhd client backup "$SMOKE/clients/$t" \
        --socket "$SMOKE/mhd.sock" --tenant "tenant-$t" --label day0 &
    CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do wait "$pid"; done
for t in a b c; do
    ./target/release/mhd client restore day0_image.img \
        --socket "$SMOKE/mhd.sock" --tenant "tenant-$t" \
        -o "$SMOKE/clients/$t/restored.img"
    cmp "$SMOKE/clients/$t/image.img" "$SMOKE/clients/$t/restored.img"
done
./target/release/mhd client fsck --socket "$SMOKE/mhd.sock"
./target/release/mhd client shutdown --socket "$SMOKE/mhd.sock"
wait "$SERVE_PID"
./target/release/mhd fsck --store "$SMOKE/daemon-store"

step "daemon: commit-sharding smoke sweep (daemon_bench)"
# The bench's own gates do the real work: chunks_stored must stay within
# 2 of the 1-session reference through 4 sessions, and with
# DAEMON_BENCH_REQUIRE_SCALING set, either 4-session throughput holds
# 0.9x the 2-session figure (4+ cores) or the measured serialized share
# of commit time stays under 80% on every multi-session row (fewer
# cores). 48M — the published exhibit's corpus — is the floor for the
# occupancy gate: smaller corpora make commits so tiny that the fixed
# per-commit persist cost (sidecar rewrites) dominates every row
# regardless of lock behaviour. A missing JSON means the exhibit
# silently stopped being produced — fail loudly.
DAEMON_BENCH_REQUIRE_SCALING=1 ./target/release/daemon_bench \
    --bytes 48M --out "$SMOKE/daemon-bench" > /dev/null
[[ -f "$SMOKE/daemon-bench/daemon_bench.json" ]] || {
    echo "error: daemon_bench.json was not written" >&2
    exit 1
}

step "chunker: FastCDC/AE shootout smoke (chunker_bench)"
# The bench's unconditional gates carry the correctness load: every
# chunker's dedup run ends with a byte-exact restore probe, and the SWAR,
# scalar, and calibrated FastCDC kernels must produce identical cut
# points on the corpus. REQUIRE_FASTCDC adds the throughput gate — both
# the calibrated and the forced-SWAR FastCDC rows must hold at least
# Rabin's MiB/s (a release-codegen property, hence the release binary).
CHUNKER_BENCH_REQUIRE_FASTCDC=1 ./target/release/chunker_bench \
    --bytes 24M --out "$SMOKE/chunker-bench" > /dev/null
[[ -f "$SMOKE/chunker-bench/chunker_bench.json" ]] || {
    echo "error: chunker_bench.json was not written" >&2
    exit 1
}

step "lint: mhd-lint invariant passes + model checking"
# Release binary: the publish/intent/compact-gc state spaces are explored
# exhaustively, and the six models run on separate threads inside the
# binary. --require-complete turns any truncated exploration into a hard
# failure — an unexplored model proves nothing, baseline or not.
./target/release/mhd-lint --baseline lint-baseline.json \
    --require-complete --sarif "$SMOKE/mhd-lint.sarif"
[[ -f "$SMOKE/mhd-lint.sarif" ]] || {
    echo "error: mhd-lint.sarif was not written" >&2
    exit 1
}
# Belt and braces on completeness: the JSON report must say every model
# explored its whole state space ("complete": true on all six).
./target/release/mhd-lint --mck-only --require-complete --json \
    > "$SMOKE/mhd-lint.json"
if grep -q '"complete": false' "$SMOKE/mhd-lint.json"; then
    echo "error: a model exploration was truncated" >&2
    exit 1
fi
# The checker must still catch the seeded historical bugs — a checker
# that stops finding them is itself broken.
./target/release/mhd-lint --mutant flush-order > /dev/null
./target/release/mhd-lint --mutant ring-prune > /dev/null
./target/release/mhd-lint --mutant gc-protect > /dev/null
./target/release/mhd-lint --mutant splice-order > /dev/null
./target/release/mhd-lint --mutant publish-epoch > /dev/null
./target/release/mhd-lint --mutant intent-retire > /dev/null
./target/release/mhd-lint --mutant compact-sweep > /dev/null

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo doc (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo
echo "all CI stages passed."
