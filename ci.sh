#!/usr/bin/env bash
# The full local CI gate. Run before every push; everything must pass.
#
#   ./ci.sh          # tier-1 + feature matrix + style + lints + docs
#   ./ci.sh tier1    # just the tier-1 gate (build + tests)
#
# Stages:
#   1. tier-1: release build + full test suite (ROADMAP.md)
#   2. feature matrix — the obs-disabled workspace still builds
#   3. rustfmt   — style, enforced via rustfmt.toml
#   4. clippy    — all targets, warnings are errors
#   5. rustdoc   — every public item documented, no broken links
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "tier-1: cargo build --release"
cargo build --release

step "tier-1: cargo test -q"
cargo test -q

if [[ "${1:-}" == "tier1" ]]; then
    echo "tier-1 gate passed."
    exit 0
fi

step "feature matrix: cargo build --workspace --no-default-features"
cargo build --workspace --no-default-features

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo doc (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo
echo "all CI stages passed."
